#include "util/histogram.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace lsmlab {

const std::vector<double>& Histogram::BucketLimits() {
  // Geometric series with ratio ~1.2 covering [1, ~1e12].
  static const std::vector<double>& limits = *new std::vector<double>([] {
    std::vector<double> v;
    double x = 1.0;
    while (x < 1e12) {
      v.push_back(x);
      x *= 1.2;
      x = std::max(x, v.back() + 1.0);
    }
    v.push_back(std::numeric_limits<double>::infinity());
    return v;
  }());
  return limits;
}

Histogram::Histogram() { Clear(); }

void Histogram::Clear() {
  // Sentinels that lose to any real sample (negative values included);
  // Min()/Max() report 0 while empty.
  min_ = std::numeric_limits<double>::max();
  max_ = std::numeric_limits<double>::lowest();
  count_ = 0;
  sum_ = 0;
  buckets_.assign(BucketLimits().size(), 0);
}

void Histogram::Add(double value) {
  const auto& limits = BucketLimits();
  size_t b = std::upper_bound(limits.begin(), limits.end(), value) -
             limits.begin();
  if (b >= buckets_.size()) {
    b = buckets_.size() - 1;
  }
  buckets_[b]++;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  count_++;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const auto& limits = BucketLimits();
  double threshold = count_ * (p / 100.0);
  double cumulative = 0;
  for (size_t b = 0; b < buckets_.size(); b++) {
    cumulative += buckets_[b];
    if (cumulative >= threshold) {
      // Bucket 0 spans down to the smallest sample, which may be negative;
      // interpolating from 0 would report a value above min_ for low
      // percentiles.
      double left = (b == 0) ? std::min(0.0, min_) : limits[b - 1];
      double right = limits[b];
      if (right == std::numeric_limits<double>::infinity()) {
        right = max_;
      }
      double left_count = cumulative - buckets_[b];
      double pos = (buckets_[b] == 0)
                       ? 0.0
                       : (threshold - left_count) / buckets_[b];
      double r = left + (right - left) * pos;
      r = std::max(r, min_);
      r = std::min(r, max_);
      return r;
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu avg=%.2f p50=%.2f p95=%.2f p99=%.2f min=%.2f "
                "max=%.2f",
                static_cast<unsigned long long>(count_), Average(),
                Percentile(50), Percentile(95), Percentile(99), Min(), Max());
  return buf;
}

}  // namespace lsmlab
