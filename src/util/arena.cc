#include "util/arena.h"

#include <cassert>

namespace lsmlab {

namespace {

constexpr size_t kBlockSize = 4096;

/// Per-(thread, arena) bump state for the concurrent path. A thread
/// interleaves at most a handful of live arenas (the active memtable per
/// shard), so a tiny direct-mapped cache with round-robin eviction
/// suffices; evicting a slot merely abandons its block remainder.
/// Slots are keyed by the arena's never-reused id, so a pointer into a
/// destroyed arena's memory can never be revived by a later arena.
struct ThreadArenaSlot {
  uint64_t arena_id = 0;  // 0 = empty (ids start at 1)
  char* ptr = nullptr;
  size_t remaining = 0;
};

constexpr int kThreadArenaSlots = 8;
thread_local ThreadArenaSlot tls_slots[kThreadArenaSlots];
thread_local int tls_next_victim = 0;

ThreadArenaSlot* SlotFor(uint64_t arena_id) {
  for (auto& slot : tls_slots) {
    if (slot.arena_id == arena_id) {
      return &slot;
    }
  }
  ThreadArenaSlot* slot = &tls_slots[tls_next_victim];
  tls_next_victim = (tls_next_victim + 1) % kThreadArenaSlots;
  slot->arena_id = arena_id;
  slot->ptr = nullptr;
  slot->remaining = 0;
  return slot;
}

uint64_t NextArenaId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Arena::Arena()
    : id_(NextArenaId()),
      alloc_ptr_(nullptr),
      alloc_bytes_remaining_(0),
      memory_usage_(0) {}

char* Arena::Allocate(size_t bytes) {
  assert(bytes > 0);
  if (bytes <= alloc_bytes_remaining_) {
    char* result = alloc_ptr_;
    alloc_ptr_ += bytes;
    alloc_bytes_remaining_ -= bytes;
    return result;
  }
  return AllocateFallback(bytes);
}

char* Arena::AllocateAligned(size_t bytes) {
  const size_t align = alignof(max_align_t) > 8 ? alignof(max_align_t) : 8;
  static_assert((alignof(max_align_t) & (alignof(max_align_t) - 1)) == 0,
                "alignment must be a power of two");
  size_t current_mod = reinterpret_cast<uintptr_t>(alloc_ptr_) & (align - 1);
  size_t slop = (current_mod == 0 ? 0 : align - current_mod);
  size_t needed = bytes + slop;
  char* result;
  if (needed <= alloc_bytes_remaining_) {
    result = alloc_ptr_ + slop;
    alloc_ptr_ += needed;
    alloc_bytes_remaining_ -= needed;
  } else {
    // AllocateFallback always returns naturally aligned memory.
    result = AllocateFallback(bytes);
  }
  assert((reinterpret_cast<uintptr_t>(result) & (align - 1)) == 0);
  return result;
}

char* Arena::AllocateAlignedConcurrent(size_t bytes) {
  const size_t align = alignof(max_align_t) > 8 ? alignof(max_align_t) : 8;
  return ConcurrentImpl(bytes, align);
}

char* Arena::ConcurrentImpl(size_t bytes, size_t align) {
  assert(bytes > 0);
  assert((align & (align - 1)) == 0);
  ThreadArenaSlot* slot = SlotFor(id_);
  const size_t mod = reinterpret_cast<uintptr_t>(slot->ptr) & (align - 1);
  const size_t slop = (mod == 0 ? 0 : align - mod);
  if (bytes + slop <= slot->remaining) {
    char* result = slot->ptr + slop;
    slot->ptr += bytes + slop;
    slot->remaining -= bytes + slop;
    return result;
  }

  MutexLock lock(&blocks_mu_);
  if (bytes > kBlockSize / 4) {
    // Own block for large objects; operator new[] memory is naturally
    // aligned, and the thread keeps its current bump block.
    return AllocateNewBlock(bytes);
  }
  char* block = AllocateNewBlock(kBlockSize);
  slot->ptr = block + bytes;  // fresh blocks are naturally aligned
  slot->remaining = kBlockSize - bytes;
  return block;
}

char* Arena::AllocateFallback(size_t bytes) {
  MutexLock lock(&blocks_mu_);
  if (bytes > kBlockSize / 4) {
    // Large objects get their own block so we do not waste the remainder of
    // the current block.
    return AllocateNewBlock(bytes);
  }

  alloc_ptr_ = AllocateNewBlock(kBlockSize);
  alloc_bytes_remaining_ = kBlockSize;

  char* result = alloc_ptr_;
  alloc_ptr_ += bytes;
  alloc_bytes_remaining_ -= bytes;
  return result;
}

char* Arena::AllocateNewBlock(size_t block_bytes) {
  blocks_.push_back(std::make_unique<char[]>(block_bytes));
  memory_usage_.fetch_add(block_bytes + sizeof(char*),
                          std::memory_order_relaxed);
  return blocks_.back().get();
}

}  // namespace lsmlab
