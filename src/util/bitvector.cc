#include "util/bitvector.h"

#include <bit>
#include <cassert>

namespace lsmlab {

void BitVector::BuildRank() {
  rank_.assign(words_.size() + 1, 0);
  for (size_t w = 0; w < words_.size(); w++) {
    rank_[w + 1] = rank_[w] + std::popcount(words_[w]);
  }
  total_ones_ = rank_.empty() ? 0 : rank_.back();
}

size_t BitVector::Rank1(size_t i) const {
  assert(!rank_.empty() && i <= size_);
  const size_t word = i / 64;
  const size_t bit = i % 64;
  size_t r = rank_[word];
  if (bit != 0) {
    r += std::popcount(words_[word] & ((uint64_t{1} << bit) - 1));
  }
  return r;
}

size_t BitVector::Select1(size_t k) const {
  assert(!rank_.empty());
  if (k >= total_ones_) {
    return size_;
  }
  // Binary search the rank directory for the word containing the k-th one.
  size_t lo = 0;
  size_t hi = words_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (rank_[mid] <= k) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  uint64_t word = words_[lo];
  size_t remaining = k - rank_[lo];
  // Walk set bits within the word.
  for (size_t i = 0; i < remaining; i++) {
    word &= word - 1;  // clear lowest set bit
  }
  return lo * 64 + static_cast<size_t>(std::countr_zero(word));
}

}  // namespace lsmlab
