#ifndef LSMLAB_UTIL_STATUS_H_
#define LSMLAB_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace lsmlab {

/// Status communicates the outcome of an operation without exceptions.
///
/// Cheap to copy in the common OK case (empty message, code enum only).
/// Use the static constructors (`Status::NotFound(...)`) to build errors and
/// the `Is*()` predicates to classify them.
///
/// [[nodiscard]]: silently dropping a Status loses an I/O or corruption
/// error, so the compiler flags every ignored return. The rare intentional
/// drop (best-effort cleanup) must say so with `.IgnoreError()`.
class [[nodiscard]] Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }

  /// Human-readable representation, e.g. "NotFound: missing.sst".
  std::string ToString() const;

  /// Explicitly discards the status. Using the returned object satisfies
  /// [[nodiscard]]; grep-able marker that a drop is deliberate, not a bug.
  void IgnoreError() const {}

 private:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
  };

  Status(Code code, const Slice& msg, const Slice& msg2) : code_(code) {
    msg_.assign(msg.data(), msg.size());
    if (!msg2.empty()) {
      msg_.append(": ");
      msg_.append(msg2.data(), msg2.size());
    }
  }

  Code code_;
  std::string msg_;
};

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_STATUS_H_
