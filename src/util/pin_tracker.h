#ifndef LSMLAB_UTIL_PIN_TRACKER_H_
#define LSMLAB_UTIL_PIN_TRACKER_H_

/// Debug-build leak detector for refcounted pins — the runtime mirror of
/// the static acquire/release analysis in tools/check_resource_flow.py.
///
/// A cache that hands out pinned handles (LruCache, TableCache) owns one
/// PinTracker per resource kind. Every externally visible acquisition
/// records the caller's source location (captured by a defaulted
/// std::source_location parameter on the acquire API, so the recorded site
/// is the caller, not the cache); every release removes one record. When
/// the cache is destroyed with pins still live, the tracker prints a
/// per-acquisition-site report — site, count — and aborts, turning "the
/// destructor assert fired somewhere" into "this call site leaked N pins".
/// Every ctest run of a debug build doubles as a pin-leak check.
///
/// Release builds compile the tracker down to an empty object and no-op
/// inline calls; the defaulted source_location argument still exists but
/// is never materialized into storage.

#include <source_location>

#ifndef NDEBUG
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <unordered_map>

#include "util/mutex.h"
#include "util/thread_annotations.h"
#endif

namespace lsmlab {

#ifndef NDEBUG

class PinTracker {
 public:
  /// `resource` names the pinned resource in leak reports (static string).
  explicit PinTracker(const char* resource) : resource_(resource) {}

  PinTracker(const PinTracker&) = delete;
  PinTracker& operator=(const PinTracker&) = delete;

  /// Records one live pin keyed by the handle's address. The same handle
  /// may be pinned many times (every Lookup of a resident entry returns
  /// the same pointer); each acquisition gets its own record.
  void Acquire(const void* pin, const std::source_location& loc) {
    MutexLock lock(&mu_);
    live_.emplace(pin, FormatSite(loc));
  }

  /// Drops one record for `pin`. Releasing a pin that was never acquired
  /// is itself a bug (a double-release upstream) and asserts.
  void Release(const void* pin) {
    MutexLock lock(&mu_);
    auto it = live_.find(pin);
    assert(it != live_.end() && "released a pin that was never acquired");
    if (it != live_.end()) {
      live_.erase(it);
    }
  }

  /// Number of currently live pins (test introspection).
  size_t LiveCount() const {
    MutexLock lock(&mu_);
    return live_.size();
  }

  /// Called from the owning cache's destructor: aborts with a per-site
  /// leak report when any pin is still live. The report is assembled
  /// under mu_ but written to stderr only after the lock is released —
  /// the tracker obeys the same no-I/O-under-lock contract it helps
  /// enforce (tools/check_lock_io.py).
  void CheckNoLivePins() {
    std::string report;
    {
      MutexLock lock(&mu_);
      if (live_.empty()) {
        return;
      }
      std::map<std::string, int> by_site;
      for (const auto& [pin, site] : live_) {
        by_site[site]++;
      }
      report = "lsmlab: " + std::string(resource_) + ": " +
               std::to_string(live_.size()) +
               " pin(s) still live at cache destruction:\n";
      for (const auto& [site, count] : by_site) {
        report += "  " + std::to_string(count) + " acquired at " + site + "\n";
      }
    }
    std::fputs(report.c_str(), stderr);
    std::abort();
  }

 private:
  static std::string FormatSite(const std::source_location& loc) {
    return std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
           " (" + loc.function_name() + ")";
  }

  const char* const resource_;
  mutable Mutex mu_{LockRank::kPinTrackerMu};
  // handle address -> formatted acquisition site, one entry per live pin.
  std::unordered_multimap<const void*, std::string> live_ GUARDED_BY(mu_);
};

#else  // NDEBUG

class PinTracker {
 public:
  explicit PinTracker(const char* resource) { (void)resource; }

  PinTracker(const PinTracker&) = delete;
  PinTracker& operator=(const PinTracker&) = delete;

  void Acquire(const void* pin, const std::source_location& loc) {
    (void)pin;
    (void)loc;
  }
  void Release(const void* pin) { (void)pin; }
  size_t LiveCount() const { return 0; }
  void CheckNoLivePins() {}
};

#endif  // NDEBUG

}  // namespace lsmlab

#endif  // LSMLAB_UTIL_PIN_TRACKER_H_
