#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "filter/filter_policy.h"
#include "rangefilter/range_filter.h"

namespace lsmlab {

namespace {

/// Prefix Bloom filter [RocksDB prefix seek, tutorial §II-3]: each key's
/// fixed-length prefix goes into a Bloom filter. A range query can be
/// answered only when [lo, hi] lies inside a single prefix bucket; wider
/// ranges get an unconditional "maybe" — the limitation that motivated
/// SuRF and Rosetta.
class PrefixBloomFilter : public RangeFilterPolicy {
 public:
  PrefixBloomFilter(size_t prefix_len, double bits_per_key)
      : prefix_len_(prefix_len),
        bloom_(NewBloomFilterPolicy(bits_per_key)) {}

  const char* Name() const override { return "lsmlab.PrefixBloom"; }

  void CreateFilter(const std::vector<Slice>& keys,
                    std::string* dst) const override {
    std::vector<Slice> prefixes;
    prefixes.reserve(keys.size());
    for (const Slice& key : keys) {
      Slice p = Prefix(key);
      // Keys are sorted, so equal prefixes are adjacent.
      if (prefixes.empty() || prefixes.back() != p) {
        prefixes.push_back(p);
      }
    }
    bloom_->CreateFilter(prefixes.data(), prefixes.size(), dst);
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    return bloom_->KeyMayMatch(Prefix(key), filter);
  }

  bool RangeMayMatch(const Slice& lo, const Slice& hi,
                     const Slice& filter) const override {
    Slice plo = Prefix(lo);
    Slice phi = Prefix(hi);
    if (plo != phi || lo.size() < prefix_len_) {
      // The range spans prefix buckets (or lo is shorter than the prefix,
      // so keys in other buckets may qualify): cannot filter.
      return true;
    }
    return bloom_->KeyMayMatch(plo, filter);
  }

 private:
  Slice Prefix(const Slice& key) const {
    return Slice(key.data(), std::min(prefix_len_, key.size()));
  }

  size_t prefix_len_;
  std::unique_ptr<const FilterPolicy> bloom_;
};

}  // namespace

const RangeFilterPolicy* NewPrefixBloomRangeFilter(size_t prefix_len,
                                                   double bits_per_key) {
  return new PrefixBloomFilter(prefix_len, bits_per_key);
}

}  // namespace lsmlab
