#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "rangefilter/range_filter.h"
#include "util/coding.h"
#include "util/hash.h"

namespace lsmlab {

namespace {

/// Rosetta range filter [Luo et al., SIGMOD'20] (tutorial §II-3): one Bloom
/// filter per binary-prefix length of the 64-bit key image, forming an
/// implicit segment tree. A range query decomposes [lo, hi] into dyadic
/// intervals, probes each at its level, and recursively "doubts" positive
/// answers down to full-key probes, trading CPU for far fewer false
/// positives on short ranges than trie-based filters.
///
/// Memory: `bits_per_key` total, split geometrically - the full-key level
/// gets half, each shallower level half of the next - because deep levels
/// dominate the doubting path. Only the deepest `levels` levels are kept;
/// dyadic nodes above them answer "maybe" for free.
///
/// Key image: first 8 bytes, big-endian (numeric-range filters; the
/// substitution DESIGN.md documents for arbitrary-length keys).
///
/// Serialized layout: uint8 num_levels, then per kept level (shallow to
/// deep): uint8 k | fixed32 nbits | bit array. Levels with zero budget
/// store nbits = 0 and always answer maybe.
class RosettaFilter : public RangeFilterPolicy {
 public:
  RosettaFilter(double bits_per_key, int levels)
      : bits_per_key_(bits_per_key), levels_(std::clamp(levels, 1, 64)) {}

  const char* Name() const override { return "lsmlab.Rosetta"; }

  void CreateFilter(const std::vector<Slice>& keys,
                    std::string* dst) const override {
    const size_t n = keys.size();
    if (n == 0) {
      return;
    }
    std::vector<uint64_t> values;
    values.reserve(n);
    for (const Slice& k : keys) {
      values.push_back(NumericKey(k));
    }
    // Keys arrive sorted; numeric images are then non-decreasing.

    const double total_bits = bits_per_key_ * static_cast<double>(n);
    dst->push_back(static_cast<char>(levels_));

    // Geometric budget, deepest level first conceptually; emit shallow to
    // deep. Level depth d in [1, 64]; kept levels are d in
    // [65 - levels_, 64]. Budget share for depth d: 2^-(64 - d + 1) of
    // total (deepest = 1/2), renormalized over kept levels.
    double norm = 0;
    for (int i = 0; i < levels_; i++) {
      norm += std::pow(0.5, i + 1);
    }
    for (int d = 65 - levels_; d <= 64; d++) {
      const double share = std::pow(0.5, 64 - d + 1) / norm;
      size_t bits =
          static_cast<size_t>(std::floor(total_bits * share / 8)) * 8;
      BuildLevel(values, d, bits, dst);
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    View v;
    if (!v.Parse(filter, levels_)) return true;
    int budget = kDoubtBudget;
    return Doubt(v, NumericKey(key) >> 0, 64, &budget);
  }

  bool RangeMayMatch(const Slice& lo, const Slice& hi,
                     const Slice& filter) const override {
    View v;
    if (!v.Parse(filter, levels_)) return true;
    uint64_t lo_v = NumericKey(lo);
    uint64_t hi_v = NumericKey(hi);
    // The 8-byte image truncates longer keys; widen the probe to stay
    // sound: any key with image in [lo_v, hi_v] is a candidate.
    if (lo_v > hi_v) std::swap(lo_v, hi_v);
    int budget = kDoubtBudget;
    return DyadicQuery(v, 0, 0, lo_v, hi_v, &budget);
  }

 private:
  static constexpr int kDoubtBudget = 4096;  // probe cap; on exhaustion the
                                             // answer degrades to "maybe"

  struct Level {
    const char* bits = nullptr;
    uint64_t nbits = 0;
    int k = 0;
  };

  struct View {
    std::vector<Level> levels;  // index 0 = depth 65-num_levels
    int min_depth = 65;

    bool Parse(const Slice& filter, int expected_levels) {
      Slice input = filter;
      if (input.size() < 1) return false;
      const int num_levels = static_cast<unsigned char>(input[0]);
      if (num_levels != expected_levels || num_levels < 1 ||
          num_levels > 64) {
        return false;
      }
      input.remove_prefix(1);
      levels.resize(num_levels);
      min_depth = 65 - num_levels;
      for (int i = 0; i < num_levels; i++) {
        if (input.size() < 5) return false;
        levels[i].k = static_cast<unsigned char>(input[0]);
        // bounds: input.size() >= 5 was checked above.
        levels[i].nbits = DecodeFixed32(input.data() + 1);
        input.remove_prefix(5);
        const size_t bytes = levels[i].nbits / 8;
        if (levels[i].nbits % 8 != 0 || input.size() < bytes) return false;
        levels[i].bits = input.data();
        input.remove_prefix(bytes);
      }
      return true;
    }

    /// Probes depth d with prefix value p (the top d bits of the key,
    /// right-aligned). True = maybe.
    bool Probe(int d, uint64_t p, int* budget) const {
      if (d < min_depth) return true;
      const Level& lvl = levels[d - min_depth];
      if (lvl.nbits == 0 || lvl.k == 0) return true;
      if (*budget <= 0) return true;
      (*budget)--;
      uint64_t h = PrefixHash(p, d);
      const uint64_t delta = Remix64(h) | 1;
      for (int j = 0; j < lvl.k; j++) {
        const uint64_t bitpos = h % lvl.nbits;
        if ((lvl.bits[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
          return false;
        }
        h += delta;
      }
      return true;
    }
  };

  static uint64_t NumericKey(const Slice& s) {
    uint64_t v = 0;
    const size_t n = std::min<size_t>(8, s.size());
    for (size_t i = 0; i < n; i++) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(s[i]))
           << (8 * (7 - i));
    }
    return v;
  }

  static uint64_t PrefixHash(uint64_t prefix, int depth) {
    // cast-ok: hashes a trusted local integer, not untrusted bytes.
    return Hash64(reinterpret_cast<const char*>(&prefix), sizeof(prefix),
                  /*seed=*/0x9E3779B9u + static_cast<uint64_t>(depth));
  }

  void BuildLevel(const std::vector<uint64_t>& values, int depth,
                  size_t bits, std::string* dst) const {
    // Distinct prefixes at this depth (values sorted, so dedup is linear).
    std::vector<uint64_t> prefixes;
    prefixes.reserve(values.size());
    const int shift = 64 - depth;
    for (uint64_t v : values) {
      const uint64_t p = shift >= 64 ? 0 : (v >> shift);
      if (prefixes.empty() || prefixes.back() != p) {
        prefixes.push_back(p);
      }
    }

    int k = 0;
    if (bits >= 8 && !prefixes.empty()) {
      k = std::clamp(
          static_cast<int>(std::lround(
              0.69314718056 * static_cast<double>(bits) / prefixes.size())),
          1, 30);
    } else {
      bits = 0;  // too small to be useful: level answers always-maybe
    }

    dst->push_back(static_cast<char>(k));
    PutFixed32(dst, static_cast<uint32_t>(bits));
    if (bits == 0) {
      return;
    }
    const size_t init_size = dst->size();
    dst->resize(init_size + bits / 8, 0);
    char* array = dst->data() + init_size;
    for (uint64_t p : prefixes) {
      uint64_t h = PrefixHash(p, depth);
      const uint64_t delta = Remix64(h) | 1;
      for (int j = 0; j < k; j++) {
        const uint64_t bitpos = h % bits;
        array[bitpos / 8] |= (1 << (bitpos % 8));
        h += delta;
      }
    }
  }

  /// True iff some key may lie under dyadic node (depth, prefix) —
  /// verified by descending to full-key probes (Rosetta's "doubting").
  static bool Doubt(const View& v, uint64_t prefix, int depth, int* budget) {
    if (!v.Probe(depth, prefix, budget)) {
      return false;
    }
    if (depth == 64 || *budget <= 0) {
      return true;
    }
    return Doubt(v, prefix << 1, depth + 1, budget) ||
           Doubt(v, (prefix << 1) | 1, depth + 1, budget);
  }

  /// Segment-tree walk: node (depth, prefix) covers
  /// [prefix << (64-depth), ...+2^(64-depth)-1].
  static bool DyadicQuery(const View& v, uint64_t prefix, int depth,
                          uint64_t lo, uint64_t hi, int* budget) {
    const int shift = 64 - depth;
    const uint64_t node_lo = shift >= 64 ? 0 : (prefix << shift);
    const uint64_t node_hi =
        shift >= 64 ? ~uint64_t{0}
                    : node_lo + ((shift == 0) ? 0 : ((uint64_t{1} << shift) - 1));
    if (node_hi < lo || node_lo > hi) {
      return false;
    }
    if (lo <= node_lo && node_hi <= hi) {
      return Doubt(v, prefix, depth, budget);
    }
    if (!v.Probe(depth, prefix, budget)) {
      return false;  // prune: no key under this node at all
    }
    if (depth == 64) {
      return true;  // single value inside [lo, hi]
    }
    return DyadicQuery(v, prefix << 1, depth + 1, lo, hi, budget) ||
           DyadicQuery(v, (prefix << 1) | 1, depth + 1, lo, hi, budget);
  }

  double bits_per_key_;
  int levels_;
};

}  // namespace

const RangeFilterPolicy* NewRosettaRangeFilter(double bits_per_key,
                                               int levels) {
  return new RosettaFilter(bits_per_key, levels);
}

}  // namespace lsmlab
