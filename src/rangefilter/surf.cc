#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "rangefilter/range_filter.h"
#include "util/coding.h"

namespace lsmlab {

namespace {

// ---------------------------------------------------------------------------
// SuRF-style succinct range filter [Zhang et al., SIGMOD'18].
//
// Keys are truncated to their shortest distinguishing prefix and stored in a
// byte-trie encoded LOUDS-dense: per node a 256-bit label bitmap, a 256-bit
// has-child bitmap (subset of labels), and one is-prefix-key bit. Child node
// ids are ranks over the has-child bitmap; leaf slots are ranks over
// (labels minus has-child). Leaves optionally carry `suffix_bits` real key
// bits for extra point-query precision (SuRF-Real).
//
// Serialized layout (all integers little-endian):
//   fixed32 num_nodes | fixed32 num_leaves | fixed32 suffix_bits
//   | labels bits+rank | has_child bits+rank | prefix_key bits+rank
//   | packed suffix bits
// Each bit section: fixed32 nbits | ceil(nbits/64)*8 bytes of words
//   | one fixed32 rank sample per 8 words.
// ---------------------------------------------------------------------------

constexpr size_t kRankSampleWords = 8;  // one u32 sample per 512 bits

size_t WordsForBits(size_t nbits) { return (nbits + 63) / 64; }
size_t SamplesForWords(size_t nwords) {
  return nwords / kRankSampleWords + 1;
}

/// Append-only writer for one bit section.
class BitsWriter {
 public:
  explicit BitsWriter(size_t nbits) : words_(WordsForBits(nbits)), nbits_(nbits) {}

  void Set(size_t i) { words_[i / 64] |= uint64_t{1} << (i % 64); }

  void AppendTo(std::string* dst) const {
    PutFixed32(dst, static_cast<uint32_t>(nbits_));
    for (uint64_t w : words_) {
      PutFixed64(dst, w);
    }
    // Exactly SamplesForWords(nwords) samples: samples[g] = ones before
    // word g*kRankSampleWords.
    uint32_t acc = 0;
    size_t w = 0;
    for (size_t g = 0; g < SamplesForWords(words_.size()); g++) {
      while (w < std::min(words_.size(), g * kRankSampleWords)) {
        acc += static_cast<uint32_t>(__builtin_popcountll(words_[w]));
        w++;
      }
      PutFixed32(dst, acc);
    }
  }

 private:
  std::vector<uint64_t> words_;
  size_t nbits_;
};

/// Read-only view of one serialized bit section (unaligned-safe).
struct BitsView {
  const char* words = nullptr;   // nwords * 8 bytes
  const char* samples = nullptr; // SamplesForWords(nwords) * 4 bytes
  size_t nbits = 0;
  size_t nwords = 0;

  /// Parses a section from *input, advancing it. Returns false on corruption.
  bool Parse(Slice* input) {
    if (input->size() < 4) return false;
    // bounds: size checked >= 4 immediately above.
    nbits = DecodeFixed32(input->data());
    input->remove_prefix(4);
    nwords = WordsForBits(nbits);
    const size_t word_bytes = nwords * 8;
    const size_t sample_bytes = SamplesForWords(nwords) * 4;
    if (input->size() < word_bytes + sample_bytes) return false;
    words = input->data();
    samples = input->data() + word_bytes;
    input->remove_prefix(word_bytes + sample_bytes);
    return true;
  }

  uint64_t Word(size_t w) const {
    uint64_t v;
    memcpy(&v, words + w * 8, 8);
    return v;
  }

  bool Get(size_t i) const {
    return (Word(i / 64) >> (i % 64)) & 1;
  }

  size_t Rank1(size_t i) const {  // ones in [0, i)
    const size_t w = i / 64;
    const size_t group = w / kRankSampleWords;
    uint32_t r;
    memcpy(&r, samples + group * 4, 4);
    size_t rank = r;
    for (size_t k = group * kRankSampleWords; k < w; k++) {
      rank += static_cast<size_t>(__builtin_popcountll(Word(k)));
    }
    const size_t bit = i % 64;
    if (bit != 0) {
      rank += static_cast<size_t>(
          __builtin_popcountll(Word(w) & ((uint64_t{1} << bit) - 1)));
    }
    return rank;
  }

  /// Smallest set bit >= from within [from, limit), or limit if none.
  size_t NextSet(size_t from, size_t limit) const {
    if (from >= limit) return limit;
    size_t w = from / 64;
    uint64_t cur = Word(w) & ~((uint64_t{1} << (from % 64)) - 1);
    while (true) {
      if (cur != 0) {
        const size_t pos = w * 64 + __builtin_ctzll(cur);
        return pos < limit ? pos : limit;
      }
      w++;
      if (w * 64 >= limit) return limit;
      cur = Word(w);
    }
  }
};

/// Explicit trie used transiently at build time.
struct BuildNode {
  std::map<uint8_t, std::unique_ptr<BuildNode>> children;
  // Labels that terminate a truncated key at this node (leaf edges).
  std::map<uint8_t, std::string> leaf_suffixes;  // label -> remaining key bytes
  bool is_prefix_key = false;
};

size_t CommonPrefix(const Slice& a, const Slice& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) i++;
  return i;
}

class SurfFilter : public RangeFilterPolicy {
 public:
  explicit SurfFilter(size_t suffix_bits)
      : suffix_bits_(std::min<size_t>(suffix_bits, 32)) {}

  const char* Name() const override { return "lsmlab.SuRF"; }

  void CreateFilter(const std::vector<Slice>& keys,
                    std::string* dst) const override {
    // 1. Truncate each key to its shortest distinguishing prefix.
    BuildNode root;
    const size_t n = keys.size();
    for (size_t i = 0; i < n; i++) {
      size_t lcp = 0;
      if (i > 0) lcp = std::max(lcp, CommonPrefix(keys[i - 1], keys[i]));
      if (i + 1 < n) lcp = std::max(lcp, CommonPrefix(keys[i], keys[i + 1]));
      const size_t plen = std::min(keys[i].size(), lcp + 1);
      Insert(&root, keys[i], plen);
    }

    // 2. BFS over the trie to assign node ids and emit bitmaps.
    std::vector<const BuildNode*> bfs;
    bfs.push_back(&root);
    for (size_t i = 0; i < bfs.size(); i++) {
      for (const auto& [label, child] : bfs[i]->children) {
        bfs.push_back(child.get());
      }
    }
    const size_t num_nodes = bfs.size();

    BitsWriter labels(num_nodes * 256);
    BitsWriter has_child(num_nodes * 256);
    BitsWriter prefix_key(num_nodes);
    std::vector<uint32_t> suffixes;
    size_t num_leaves = 0;
    for (size_t id = 0; id < num_nodes; id++) {
      const BuildNode* node = bfs[id];
      if (node->is_prefix_key) prefix_key.Set(id);
      // Merge the two label maps in byte order.
      for (int b = 0; b < 256; b++) {
        const uint8_t label = static_cast<uint8_t>(b);
        const bool internal = node->children.count(label) > 0;
        const bool leaf = node->leaf_suffixes.count(label) > 0;
        assert(!(internal && leaf));  // builder-ok: trusted build-side keys
        if (internal) {
          labels.Set(id * 256 + b);
          has_child.Set(id * 256 + b);
        } else if (leaf) {
          labels.Set(id * 256 + b);
          num_leaves++;
          suffixes.push_back(
              PackSuffix(node->leaf_suffixes.at(label), suffix_bits_));
        }
      }
    }

    PutFixed32(dst, static_cast<uint32_t>(num_nodes));
    PutFixed32(dst, static_cast<uint32_t>(num_leaves));
    PutFixed32(dst, static_cast<uint32_t>(suffix_bits_));
    labels.AppendTo(dst);
    has_child.AppendTo(dst);
    prefix_key.AppendTo(dst);
    // Packed suffix array.
    BitsWriter suffix_bits_writer(num_leaves * suffix_bits_);
    for (size_t i = 0; i < suffixes.size(); i++) {
      for (size_t b = 0; b < suffix_bits_; b++) {
        if ((suffixes[i] >> b) & 1) {
          suffix_bits_writer.Set(i * suffix_bits_ + b);
        }
      }
    }
    suffix_bits_writer.AppendTo(dst);
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    View v;
    if (!v.Parse(filter)) return true;
    size_t node = 0;
    for (size_t depth = 0;; depth++) {
      if (node >= v.num_nodes) {
        return true;  // corrupt rank structure: answer maybe, never read OOB
      }
      if (depth >= key.size()) {
        // Key exhausted at an internal node: present iff a stored key
        // terminates exactly here.
        return v.prefix_key.Get(node);
      }
      const uint8_t b = static_cast<uint8_t>(key[depth]);
      const size_t pos = node * 256 + b;
      if (!v.labels.Get(pos)) return false;
      if (v.has_child.Get(pos)) {
        node = v.ChildId(pos);
        continue;
      }
      // Leaf edge: verify the suffix bits of the remaining key.
      if (v.suffix_nbits == 0) return true;
      const size_t leaf = v.LeafId(pos);
      if (leaf >= v.num_leaves) {
        return true;  // corrupt rank structure: maybe
      }
      const uint32_t stored = v.Suffix(leaf);
      const uint32_t expected =
          PackSuffix(Slice(key.data() + depth + 1, key.size() - depth - 1),
                     v.suffix_nbits);
      return stored == expected;
    }
  }

  bool RangeMayMatch(const Slice& lo, const Slice& hi,
                     const Slice& filter) const override {
    View v;
    if (!v.Parse(filter)) return true;
    std::string succ;
    const int r = LowerBound(v, lo, &succ);
    if (r < 0) return false;   // no stored prefix >= lo
    if (r == 1) return true;   // ambiguous truncation: maybe
    // succ is the smallest stored prefix >= lo; the range is non-empty
    // unless succ > hi (prefix-of relation makes succ <= hi a "maybe").
    return Slice(succ).compare(hi) <= 0;
  }

 private:
  struct View {
    BitsView labels;
    BitsView has_child;
    BitsView prefix_key;
    BitsView suffixes;
    size_t num_nodes = 0;
    size_t num_leaves = 0;
    size_t suffix_nbits = 0;

    bool Parse(const Slice& filter) {
      Slice input = filter;
      if (input.size() < 12) return false;
      // bounds: size checked >= 12 immediately above.
      num_nodes = DecodeFixed32(input.data());
      num_leaves = DecodeFixed32(input.data() + 4);
      suffix_nbits = DecodeFixed32(input.data() + 8);
      input.remove_prefix(12);
      if (!labels.Parse(&input) || !has_child.Parse(&input) ||
          !prefix_key.Parse(&input) || !suffixes.Parse(&input) ||
          num_nodes == 0) {
        return false;
      }
      // Cross-check the section sizes against the claimed node/leaf counts
      // (all 64-bit math): traversal indexes bitmaps by node * 256 + label
      // and the suffix array by leaf * suffix_nbits, so undersized sections
      // would turn a lookup into an out-of-bounds read.
      const uint64_t label_bits = static_cast<uint64_t>(num_nodes) * 256;
      if (labels.nbits < label_bits || has_child.nbits < label_bits ||
          prefix_key.nbits < num_nodes || suffix_nbits > 32 ||
          suffixes.nbits <
              static_cast<uint64_t>(num_leaves) * suffix_nbits) {
        return false;
      }
      return true;
    }

    size_t ChildId(size_t pos) const {
      // The node created by the k-th set has_child bit (0-based) is node
      // k+1 in BFS order.
      return has_child.Rank1(pos + 1);
    }

    size_t LeafId(size_t pos) const {
      return labels.Rank1(pos + 1) - has_child.Rank1(pos + 1) - 1;
    }

    uint32_t Suffix(size_t leaf) const {
      uint32_t value = 0;
      for (size_t b = 0; b < suffix_nbits; b++) {
        if (suffixes.Get(leaf * suffix_nbits + b)) value |= (1u << b);
      }
      return value;
    }
  };

  static uint32_t PackSuffix(const Slice& rest, size_t nbits) {
    // First `nbits` bits of the remaining key bytes, zero-padded.
    uint32_t value = 0;
    for (size_t b = 0; b < nbits; b++) {
      const size_t byte = b / 8;
      if (byte < rest.size() &&
          (static_cast<uint8_t>(rest[byte]) >> (7 - b % 8)) & 1) {
        value |= (1u << b);
      }
    }
    return value;
  }

  static void Insert(BuildNode* root, const Slice& key, size_t plen) {
    BuildNode* node = root;
    if (plen == 0) {
      root->is_prefix_key = true;  // empty key
      return;
    }
    for (size_t d = 0; d + 1 < plen; d++) {
      const uint8_t b = static_cast<uint8_t>(key[d]);
      // A previously inserted truncated key may terminate where this key
      // branches: convert its leaf edge to an internal edge + prefix mark.
      auto leaf_it = node->leaf_suffixes.find(b);
      auto& child = node->children[b];
      if (child == nullptr) {
        child = std::make_unique<BuildNode>();
      }
      if (leaf_it != node->leaf_suffixes.end()) {
        child->is_prefix_key = true;
        node->leaf_suffixes.erase(leaf_it);
      }
      node = child.get();
    }
    const uint8_t last = static_cast<uint8_t>(key[plen - 1]);
    auto child_it = node->children.find(last);
    if (child_it != node->children.end()) {
      // A longer key already created an internal edge here.
      child_it->second->is_prefix_key = true;
      return;
    }
    node->leaf_suffixes[last] =
        std::string(key.data() + plen, key.size() - plen);
  }

  /// Finds the smallest stored (truncated) key >= lo.
  /// Returns -1 if none, 1 if the answer is ambiguous because a truncated
  /// leaf lies on lo's own path ("maybe"), 0 with *succ set otherwise.
  static int LowerBound(const View& v, const Slice& lo, std::string* succ) {
    // Stack of (node, label taken) along lo's path for backtracking.
    std::vector<std::pair<size_t, int>> stack;
    size_t node = 0;
    size_t depth = 0;
    while (true) {
      if (node >= v.num_nodes) {
        return 1;  // corrupt rank structure: ambiguous, caller says maybe
      }
      if (depth >= lo.size()) {
        // lo exhausted: every key in this subtree >= lo.
        if (v.prefix_key.Get(node)) {
          succ->assign(lo.data(), lo.size());
          return 0;
        }
        return DescendSmallest(v, node, lo, depth, succ);
      }
      const uint8_t b = static_cast<uint8_t>(lo[depth]);
      const size_t pos = node * 256 + b;
      if (v.labels.Get(pos)) {
        if (v.has_child.Get(pos)) {
          stack.emplace_back(node, b);
          node = v.ChildId(pos);
          depth++;
          continue;
        }
        // Truncated leaf on lo's path: the stored full key shares
        // lo[0..depth] but its tail is unknown -> could be >= lo.
        return 1;
      }
      // lo's label is absent: take the next larger label here or backtrack.
      size_t next = v.labels.NextSet(pos + 1, (node + 1) * 256);
      while (next == (node + 1) * 256) {
        if (stack.empty()) return -1;
        const auto [parent, taken] = stack.back();
        stack.pop_back();
        depth--;
        node = parent;
        next = v.labels.NextSet(node * 256 + taken + 1, (node + 1) * 256);
      }
      // Smallest key through the strictly larger branch `next`.
      return TakeBranch(v, next, lo, depth, succ);
    }
  }

  /// Appends lo[0..depth) + label(next) then descends smallest labels.
  static int TakeBranch(const View& v, size_t next, const Slice& lo,
                        size_t depth, std::string* succ) {
    succ->assign(lo.data(), depth);
    succ->push_back(static_cast<char>(next % 256));
    if (!v.has_child.Get(next)) {
      return 0;  // leaf
    }
    return DescendSmallestFrom(v, v.ChildId(next), succ);
  }

  static int DescendSmallest(const View& v, size_t node, const Slice& lo,
                             size_t depth, std::string* succ) {
    succ->assign(lo.data(), depth);
    return DescendSmallestFrom(v, node, succ);
  }

  static int DescendSmallestFrom(const View& v, size_t node,
                                 std::string* succ) {
    // Bound both the node id and the walk length: a corrupt has_child
    // bitmap can produce child ids that do not advance, and a valid trie
    // path never visits more than num_nodes nodes.
    size_t steps = 0;
    while (true) {
      if (node >= v.num_nodes || ++steps > v.num_nodes) {
        return 1;  // corrupt rank structure: ambiguous, caller says maybe
      }
      if (v.prefix_key.Get(node)) {
        return 0;  // a key terminates at this node
      }
      const size_t pos = v.labels.NextSet(node * 256, (node + 1) * 256);
      if (pos == (node + 1) * 256) {
        return -1;  // childless non-terminal node: malformed, treat empty
      }
      succ->push_back(static_cast<char>(pos % 256));
      if (!v.has_child.Get(pos)) {
        return 0;
      }
      node = v.ChildId(pos);
    }
  }

  size_t suffix_bits_;
};

}  // namespace

const RangeFilterPolicy* NewSurfRangeFilter(size_t suffix_bits) {
  return new SurfFilter(suffix_bits);
}

}  // namespace lsmlab
