#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "rangefilter/range_filter.h"
#include "util/coding.h"

namespace lsmlab {

namespace {

/// SNARF-style learned range filter [Vaidya et al., VLDB'22]
/// (tutorial §II-3): a monotone CDF model maps each key's 64-bit image into
/// a bit array of ~bits_per_key * n positions; a range query maps its two
/// endpoints and asks whether any bit between them is set. Distribution
/// awareness comes from the model: the denser the keys in a region, the
/// more bit-space it receives, keeping the false-positive rate near
/// 1 - e^(-width_density/B) regardless of skew.
///
/// The CDF model is a linear spline over every `kSampleInterval`-th key
/// (the compressed-model simplification of SNARF's Golomb-coded design;
/// DESIGN.md documents the substitution). Key image: first 8 bytes BE.
///
/// Serialized layout: fixed32 num_knots | knots (fixed64 key, fixed32 pos)*
///   | fixed64 nbits | bit array | rank samples (fixed32 per 8 words).
class SnarfFilter : public RangeFilterPolicy {
 public:
  explicit SnarfFilter(double bits_per_key)
      : bits_per_key_(std::max(1.0, bits_per_key)) {}

  const char* Name() const override { return "lsmlab.SNARF"; }

  void CreateFilter(const std::vector<Slice>& keys,
                    std::string* dst) const override {
    const size_t n = keys.size();
    if (n == 0) {
      return;
    }
    std::vector<uint64_t> values;
    values.reserve(n);
    for (const Slice& k : keys) {
      values.push_back(NumericKey(k));
    }
    values.erase(std::unique(values.begin(), values.end()), values.end());

    const uint64_t nbits = std::max<uint64_t>(
        64, static_cast<uint64_t>(std::ceil(bits_per_key_ * values.size())));

    // Spline knots: every kSampleInterval-th (value, target position),
    // positions spread evenly over the bit array (empirical CDF).
    std::vector<std::pair<uint64_t, uint32_t>> knots;
    const size_t m = values.size();
    for (size_t i = 0; i < m; i += kSampleInterval) {
      knots.emplace_back(values[i], PosForRank(i, m, nbits));
    }
    if (knots.back().first != values.back()) {
      knots.emplace_back(values.back(), PosForRank(m - 1, m, nbits));
    }

    PutFixed32(dst, static_cast<uint32_t>(knots.size()));
    for (const auto& [k, p] : knots) {
      PutFixed64(dst, k);
      PutFixed32(dst, p);
    }
    PutFixed64(dst, nbits);

    const size_t nwords = (nbits + 63) / 64;
    std::vector<uint64_t> words(nwords, 0);
    for (uint64_t v : values) {
      const uint64_t pos = Predict(knots, v, nbits);
      words[pos / 64] |= uint64_t{1} << (pos % 64);
    }
    for (uint64_t w : words) {
      PutFixed64(dst, w);
    }
    // Rank samples: ones before word 8g.
    uint32_t acc = 0;
    size_t w = 0;
    for (size_t g = 0; g < nwords / 8 + 1; g++) {
      while (w < std::min(nwords, g * size_t{8})) {
        acc += static_cast<uint32_t>(__builtin_popcountll(words[w]));
        w++;
      }
      PutFixed32(dst, acc);
    }
  }

  bool RangeMayMatch(const Slice& lo, const Slice& hi,
                     const Slice& filter) const override {
    View v;
    if (!v.Parse(filter)) return true;
    uint64_t lo_v = NumericKey(lo);
    uint64_t hi_v = NumericKey(hi);
    if (lo_v > hi_v) std::swap(lo_v, hi_v);
    const uint64_t plo = v.Predict(lo_v);
    const uint64_t phi = v.Predict(hi_v);
    // Any set bit in [plo, phi]?
    return v.Rank1(phi + 1) > v.Rank1(plo);
  }

 private:
  static constexpr size_t kSampleInterval = 64;

  static uint64_t NumericKey(const Slice& s) {
    uint64_t v = 0;
    const size_t n = std::min<size_t>(8, s.size());
    for (size_t i = 0; i < n; i++) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(s[i]))
           << (8 * (7 - i));
    }
    return v;
  }

  static uint32_t PosForRank(size_t rank, size_t m, uint64_t nbits) {
    return static_cast<uint32_t>(
        (static_cast<unsigned __int128>(rank) * (nbits - 1)) /
        (m > 1 ? m - 1 : 1));
  }

  template <typename Knots>
  static uint64_t Predict(const Knots& knots, uint64_t value,
                          uint64_t nbits) {
    // Clamp outside the trained domain.
    if (value <= knots.front().first) return 0;
    if (value >= knots.back().first) return knots.back().second;
    auto it = std::upper_bound(
        knots.begin(), knots.end(), value,
        [](uint64_t v, const auto& k) { return v < k.first; });
    const auto& right = *it;
    const auto& left = *(it - 1);
    if (right.first == left.first) return left.second;
    const double frac = static_cast<double>(value - left.first) /
                        static_cast<double>(right.first - left.first);
    const double pos = left.second + frac * (right.second - left.second);
    const uint64_t p = static_cast<uint64_t>(std::llround(pos));
    return std::min<uint64_t>(p, nbits - 1);
  }

  struct View {
    std::vector<std::pair<uint64_t, uint32_t>> knots;
    const char* words = nullptr;
    const char* samples = nullptr;
    uint64_t nbits = 0;
    size_t nwords = 0;

    bool Parse(const Slice& filter) {
      Slice input = filter;
      if (input.size() < 4) return false;
      // bounds: size checked >= 4 immediately above.
      const uint32_t num_knots = DecodeFixed32(input.data());
      input.remove_prefix(4);
      if (num_knots == 0 || input.size() < num_knots * 12ull + 8) {
        return false;
      }
      knots.reserve(num_knots);
      for (uint32_t i = 0; i < num_knots; i++) {
        // bounds: the size check above guarantees 12 bytes per knot + 8.
        const uint64_t k = DecodeFixed64(input.data());
        const uint32_t p = DecodeFixed32(input.data() + 8);
        knots.emplace_back(k, p);
        input.remove_prefix(12);
      }
      // bounds: 8 trailing bytes guaranteed by the same size check.
      nbits = DecodeFixed64(input.data());
      input.remove_prefix(8);
      // Reject nbits the remaining bytes cannot possibly back BEFORE
      // computing word counts: (nbits + 63) wraps for nbits near 2^64 and
      // would otherwise pass the size check with nwords == 0 while Rank1
      // still walks `nbits` worth of words.
      if (nbits == 0 || nbits / 8 > input.size()) return false;
      nwords = (nbits + 63) / 64;
      const size_t sample_bytes = (nwords / 8 + 1) * 4;
      if (input.size() < nwords * 8 + sample_bytes) return false;
      words = input.data();
      samples = input.data() + nwords * 8;
      return true;
    }

    uint64_t Predict(uint64_t value) const {
      return SnarfFilter::Predict(knots, value, nbits);
    }

    uint64_t Word(size_t w) const {
      uint64_t v;
      memcpy(&v, words + w * 8, 8);
      return v;
    }

    uint64_t Rank1(uint64_t i) const {  // ones in [0, i)
      i = std::min(i, nbits);
      const size_t w = i / 64;
      const size_t group = w / 8;
      uint32_t r;
      memcpy(&r, samples + group * 4, 4);
      uint64_t rank = r;
      for (size_t k = group * 8; k < w; k++) {
        rank += static_cast<uint64_t>(__builtin_popcountll(Word(k)));
      }
      const size_t bit = i % 64;
      if (bit != 0) {
        rank += static_cast<uint64_t>(
            __builtin_popcountll(Word(w) & ((uint64_t{1} << bit) - 1)));
      }
      return rank;
    }
  };

  double bits_per_key_;
};

}  // namespace

const RangeFilterPolicy* NewSnarfRangeFilter(double bits_per_key) {
  return new SnarfFilter(bits_per_key);
}

}  // namespace lsmlab
