#ifndef LSMLAB_RANGEFILTER_RANGE_FILTER_H_
#define LSMLAB_RANGEFILTER_RANGE_FILTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace lsmlab {

/// Approximate range-emptiness filter over the keys of one sorted run
/// (tutorial §II-3). A range scan probes every run's range filter with
/// [lo, hi] and skips runs whose filter answers "definitely empty".
///
/// Implementations: prefix Bloom (RocksDB), SuRF-style succinct trie,
/// Rosetta (hierarchical dyadic Blooms), SNARF-style learned filter.
class RangeFilterPolicy {
 public:
  virtual ~RangeFilterPolicy() = default;

  virtual const char* Name() const = 0;

  /// Appends a filter built from the sorted `keys` of a run to *dst.
  virtual void CreateFilter(const std::vector<Slice>& keys,
                            std::string* dst) const = 0;

  /// May return false only if no key in [lo, hi] (inclusive bounds, bytewise
  /// order) was passed to CreateFilter.
  virtual bool RangeMayMatch(const Slice& lo, const Slice& hi,
                             const Slice& filter) const = 0;

  /// Point probe; equivalent to RangeMayMatch(key, key, filter) but usually
  /// cheaper.
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const {
    return RangeMayMatch(key, key, filter);
  }
};

/// Fixed-length prefix Bloom filter [RocksDB prefix seek]: inserts
/// `prefix_len`-byte prefixes into a Bloom filter. Can only answer range
/// queries fully contained in one prefix; wider ranges return "maybe".
const RangeFilterPolicy* NewPrefixBloomRangeFilter(size_t prefix_len,
                                                   double bits_per_key);

/// SuRF-style succinct trie (LOUDS-dense encoding, truncated at the
/// shortest unique prefix plus `suffix_bits` of key suffix)
/// [Zhang et al., SIGMOD'18].
const RangeFilterPolicy* NewSurfRangeFilter(size_t suffix_bits);

/// Rosetta: per-level dyadic Bloom filters forming an implicit segment
/// tree over the first 8 bytes of the key (big-endian) [Luo et al.,
/// SIGMOD'20]. `bits_per_key` is the total budget across levels.
const RangeFilterPolicy* NewRosettaRangeFilter(double bits_per_key,
                                               int levels = 64);

/// SNARF-style learned range filter: a CDF model (piecewise-linear over
/// sampled quantiles) maps the first 8 bytes of each key into a sparse bit
/// array of `bits_per_key * n` positions, stored compressed
/// [Vaidya et al., VLDB'22].
const RangeFilterPolicy* NewSnarfRangeFilter(double bits_per_key);

}  // namespace lsmlab

#endif  // LSMLAB_RANGEFILTER_RANGE_FILTER_H_
