#include "vlog/value_log.h"

#include <algorithm>
#include <cstdio>

#include "util/coding.h"
#include "util/crc32c.h"

namespace lsmlab {

ValueLog::ValueLog(Env* env, std::string dbname, size_t max_file_bytes)
    : env_(env), dbname_(std::move(dbname)), max_file_bytes_(max_file_bytes) {}

ValueLog::~ValueLog() {
  MutexLock lock(&mu_);
  if (current_file_ != nullptr) {
    // status-ok: best-effort close on teardown; the data is already synced.
    current_file_->Close().IgnoreError();
  }
}

std::string ValueLog::FileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "/%06llu.vlog",
                static_cast<unsigned long long>(number));
  return dbname + buf;
}

Status ValueLog::Open() {
  MutexLock lock(&mu_);
  // status-ok: dir may already exist; a real failure surfaces in
  // GetChildren below.
  env_->CreateDir(dbname_).IgnoreError();
  std::vector<std::string> children;
  Status s = env_->GetChildren(dbname_, &children);
  if (!s.ok()) {
    return s;
  }
  uint64_t max_number = 0;
  for (const std::string& child : children) {
    const size_t dot = child.find(".vlog");
    if (dot == std::string::npos || dot == 0 ||
        dot + 5 != child.size()) {
      continue;
    }
    char* end;
    const uint64_t number = strtoull(child.c_str(), &end, 10);
    if (end != child.c_str() + dot) {
      continue;
    }
    files_.insert(number);
    max_number = std::max(max_number, number);
  }
  // Seed the byte accounting once at open; afterwards Add/DeleteFiles
  // maintain it so TotalBytes() never stats files (it is called with the
  // DB mutex held).
  total_bytes_ = 0;
  file_bytes_.clear();
  for (uint64_t number : files_) {
    uint64_t size = 0;
    if (env_->GetFileSize(FileName(dbname_, number), &size).ok()) {
      file_bytes_[number] = size;
      total_bytes_ += size;
    }
  }
  current_number_ = max_number + 1;
  files_.insert(current_number_);
  current_offset_ = 0;
  return env_->NewWritableFile(FileName(dbname_, current_number_),
                               &current_file_);
}

Status ValueLog::RotateLocked() {
  if (current_file_ != nullptr) {
    Status s = current_file_->Close();
    if (!s.ok()) {
      return s;
    }
  }
  current_number_++;
  files_.insert(current_number_);
  current_offset_ = 0;
  return env_->NewWritableFile(FileName(dbname_, current_number_),
                               &current_file_);
}

Status ValueLog::Add(const Slice& value, std::string* pointer) {
  MutexLock lock(&mu_);
  if (current_file_ == nullptr) {
    return Status::InvalidArgument("value log not opened");
  }
  if (current_offset_ >= max_file_bytes_) {
    Status s = RotateLocked();
    if (!s.ok()) {
      return s;
    }
  }

  std::string record;
  record.reserve(value.size() + 9);
  PutFixed32(&record, crc32c::Mask(crc32c::Value(value.data(), value.size())));
  PutVarint32(&record, static_cast<uint32_t>(value.size()));
  record.append(value.data(), value.size());

  const uint64_t offset = current_offset_;
  Status s = current_file_->Append(Slice(record));
  if (!s.ok()) {
    return s;
  }
  current_offset_ += record.size();
  file_bytes_[current_number_] += record.size();
  total_bytes_ += record.size();

  pointer->clear();
  PutVarint64(pointer, current_number_);
  PutVarint64(pointer, offset);
  PutVarint32(pointer, static_cast<uint32_t>(record.size()));
  return current_file_->Flush();
}

Status ValueLog::DecodePointer(const Slice& pointer, Pointer* out) {
  Slice input = pointer;
  if (!GetVarint64(&input, &out->number) ||
      !GetVarint64(&input, &out->offset) ||
      !GetVarint32(&input, &out->size)) {
    return Status::Corruption("bad value-log pointer");
  }
  if (out->size < 5) {  // fixed32 crc + at least a 1-byte varint size
    return Status::Corruption("bad value-log pointer size");
  }
  return Status::OK();
}

Status ValueLog::GetReader(uint64_t number,
                           std::shared_ptr<RandomAccessFile>* reader) const {
  MutexLock lock(&readers_mu_);
  for (const auto& [n, r] : readers_) {
    if (n == number) {
      *reader = r;
      return Status::OK();
    }
  }
  std::unique_ptr<RandomAccessFile> file;
  Status s = env_->NewRandomAccessFile(FileName(dbname_, number), &file);
  if (!s.ok()) {
    return s;
  }
  *reader = std::shared_ptr<RandomAccessFile>(file.release());
  readers_.emplace_back(number, *reader);
  return Status::OK();
}

Status ValueLog::ReadRecord(RandomAccessFile* reader, const Pointer& ptr,
                            std::string* value) const {
  // The pointer was decoded from untrusted SSTable bytes: before sizing a
  // buffer from it, bound large claims by the log file itself so a corrupt
  // pointer cannot demand a multi-gigabyte allocation.
  if (ptr.size > (1u << 26)) {
    uint64_t log_size = 0;
    Status fs = env_->GetFileSize(FileName(dbname_, ptr.number), &log_size);
    if (!fs.ok()) {
      return fs;
    }
    if (ptr.size > log_size || ptr.offset > log_size - ptr.size) {
      return Status::Corruption("value-log pointer out of file bounds");
    }
  }
  std::string scratch(ptr.size, '\0');
  Slice record;
  Status s = reader->Read(ptr.offset, ptr.size, &record, scratch.data());
  if (!s.ok()) {
    return s;
  }
  if (record.size() != ptr.size) {
    return Status::Corruption("truncated value-log record");
  }
  // bounds: size >= 5 was checked at decode, record.size() == size.
  const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(record.data()));
  Slice body(record.data() + 4, record.size() - 4);
  uint32_t value_size;
  if (!GetVarint32(&body, &value_size) || body.size() != value_size) {
    return Status::Corruption("malformed value-log record");
  }
  if (crc32c::Value(body.data(), body.size()) != expected_crc) {
    return Status::Corruption("value-log checksum mismatch");
  }
  value->assign(body.data(), body.size());
  return Status::OK();
}

Status ValueLog::Get(const Slice& pointer, std::string* value) const {
  Pointer ptr;
  Status s = DecodePointer(pointer, &ptr);
  if (!s.ok()) {
    return s;
  }
  std::shared_ptr<RandomAccessFile> reader;
  s = GetReader(ptr.number, &reader);
  if (!s.ok()) {
    return s;
  }
  return ReadRecord(reader.get(), ptr, value);
}

void ValueLog::GetBatch(std::vector<BatchRead>* reads) const {
  struct Work {
    Pointer ptr;
    BatchRead* read;
  };
  std::vector<Work> work;
  work.reserve(reads->size());
  for (BatchRead& r : *reads) {
    Pointer ptr;
    Status s = DecodePointer(r.pointer, &ptr);
    if (!s.ok()) {
      *r.status = s;  // a bad pointer fails only its own slot
      continue;
    }
    work.push_back(Work{ptr, &r});
  }
  // Issue reads in (file, offset) order: values written together are read
  // together, turning the batch's log access pattern sequential and
  // resolving each file's read handle exactly once.
  std::sort(work.begin(), work.end(), [](const Work& a, const Work& b) {
    return a.ptr.number != b.ptr.number ? a.ptr.number < b.ptr.number
                                        : a.ptr.offset < b.ptr.offset;
  });
  std::shared_ptr<RandomAccessFile> reader;
  uint64_t reader_number = 0;
  for (const Work& w : work) {
    if (reader == nullptr || reader_number != w.ptr.number) {
      reader.reset();
      Status s = GetReader(w.ptr.number, &reader);
      if (!s.ok()) {
        *w.read->status = s;
        continue;
      }
      reader_number = w.ptr.number;
    }
    *w.read->status = ReadRecord(reader.get(), w.ptr, w.read->value);
  }
}

Status ValueLog::Sync(bool fsync) {
  MutexLock lock(&mu_);
  if (current_file_ == nullptr) {
    return Status::OK();
  }
  return fsync ? current_file_->Sync() : current_file_->Flush();
}

std::vector<uint64_t> ValueLog::ClosedFiles() const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> result;
  for (uint64_t n : files_) {
    if (n != current_number_) {
      result.push_back(n);
    }
  }
  return result;
}

Status ValueLog::DeleteFiles(const std::vector<uint64_t>& numbers) {
  MutexLock lock(&mu_);
  Status result = Status::OK();
  for (uint64_t n : numbers) {
    if (n == current_number_) {
      continue;  // never delete the live tail
    }
    files_.erase(n);
    auto bytes_it = file_bytes_.find(n);
    if (bytes_it != file_bytes_.end()) {
      total_bytes_ -= bytes_it->second;
      file_bytes_.erase(bytes_it);
    }
    {
      MutexLock rlock(&readers_mu_);
      readers_.erase(
          std::remove_if(readers_.begin(), readers_.end(),
                         [n](const auto& p) { return p.first == n; }),
          readers_.end());
    }
    Status s = env_->RemoveFile(FileName(dbname_, n));
    if (!s.ok() && result.ok()) {
      result = s;
    }
  }
  return result;
}

bool ValueLog::PointsInto(const Slice& pointer,
                          const std::set<uint64_t>& files) {
  Slice input = pointer;
  uint64_t number;
  if (!GetVarint64(&input, &number)) {
    return false;
  }
  return files.count(number) > 0;
}

uint64_t ValueLog::TotalBytes() const {
  MutexLock lock(&mu_);
  return total_bytes_;
}

size_t ValueLog::NumFiles() const {
  MutexLock lock(&mu_);
  return files_.size();
}

}  // namespace lsmlab
