#ifndef LSMLAB_VLOG_VALUE_LOG_H_
#define LSMLAB_VLOG_VALUE_LOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/env.h"
#include "util/mutex.h"
#include "util/slice.h"
#include "util/status.h"

namespace lsmlab {

/// WiscKey-style value log (tutorial I-2; Lu et al. [53], HashKV [12],
/// DiffKV [49], Parallax [88]): large values live in append-only log
/// files, the LSM-tree stores small pointer records. Compactions then move
/// pointers instead of payloads, collapsing write amplification for large
/// values; the price is one extra (random) storage access per read of a
/// separated value and a separate garbage-collection pass.
///
/// Record layout in a log file:
///   fixed32 crc | varint32 size | value bytes
/// Pointer encoding (stored as the LSM value):
///   varint64 file_number | varint64 offset | varint32 size
///
/// Thread-compatible under the DB write lock; reads are lock-free after
/// the file handle is opened.
class ValueLog {
 public:
  /// `dbname` is the database directory; log files are named
  /// <dbname>/<number>.vlog with numbering independent of table files.
  ValueLog(Env* env, std::string dbname, size_t max_file_bytes);
  ~ValueLog();

  ValueLog(const ValueLog&) = delete;
  ValueLog& operator=(const ValueLog&) = delete;

  /// Scans the directory, resumes numbering after the newest existing log.
  Status Open();

  /// Appends `value`, encoding its pointer into *pointer. Rotates to a new
  /// file when the current one exceeds the size limit.
  Status Add(const Slice& value, std::string* pointer);

  /// Resolves a pointer produced by Add (possibly in an earlier session).
  Status Get(const Slice& pointer, std::string* value) const;

  /// One separated value to resolve within a batch (DB::MultiGet).
  struct BatchRead {
    Slice pointer;             ///< in: encoded pointer (from the LSM value)
    std::string* value;        ///< out: decoded payload
    Status* status;            ///< out: per-slot; a bad pointer or record
                               ///< fails only its own slot
  };

  /// Resolves several pointers in one pass. Reads are issued sorted by
  /// (file, offset), so a batch whose values cluster in one log file walks
  /// it front-to-back instead of seeking per key in LSM order.
  void GetBatch(std::vector<BatchRead>* reads) const;

  /// Flushes (and optionally fsyncs) the current log file.
  Status Sync(bool fsync);

  /// Numbers of all closed (non-current) log files — GC candidates.
  std::vector<uint64_t> ClosedFiles() const;

  /// Deletes the given log files (after GC rewrote their live values).
  Status DeleteFiles(const std::vector<uint64_t>& numbers);

  /// True when `pointer` refers to one of `files`.
  static bool PointsInto(const Slice& pointer,
                         const std::set<uint64_t>& files);

  /// Total bytes across all live log files. Served from an incrementally
  /// maintained counter: DBImpl::GetStats calls this under the DB mutex,
  /// so it must not stat files (tools/check_lock_io.py flags the old
  /// per-call GetFileSize scan as blocking I/O under mu_).
  uint64_t TotalBytes() const;
  size_t NumFiles() const;
  uint64_t current_file_number() const {
    MutexLock lock(&mu_);
    return current_number_;
  }

 private:
  /// A decoded (and syntactically validated) value-log pointer.
  struct Pointer {
    uint64_t number = 0;
    uint64_t offset = 0;
    uint32_t size = 0;
  };

  static Status DecodePointer(const Slice& pointer, Pointer* out);
  /// Returns (lazily opening and caching) the read handle for log `number`.
  Status GetReader(uint64_t number,
                   std::shared_ptr<RandomAccessFile>* reader) const;
  /// Reads and CRC-verifies the record at `ptr` through `reader`.
  Status ReadRecord(RandomAccessFile* reader, const Pointer& ptr,
                    std::string* value) const;

  Status RotateLocked() REQUIRES(mu_);
  static std::string FileName(const std::string& dbname, uint64_t number);

  Env* const env_;
  const std::string dbname_;
  const size_t max_file_bytes_;

  // Lock order: mu_ before readers_mu_ (DeleteFiles takes both).
  mutable Mutex mu_{LockRank::kValueLogMu};
  /// All live log files (including current).
  std::set<uint64_t> files_ GUARDED_BY(mu_);
  /// Bytes per live file + their sum, maintained on Add/Open/DeleteFiles
  /// so TotalBytes() never touches the filesystem.
  std::map<uint64_t, uint64_t> file_bytes_ GUARDED_BY(mu_);
  uint64_t total_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t current_number_ GUARDED_BY(mu_) = 0;
  uint64_t current_offset_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<WritableFile> current_file_ GUARDED_BY(mu_);

  // Open read handles, keyed by file number (lazily opened, kept).
  mutable Mutex readers_mu_ ACQUIRED_AFTER(mu_){LockRank::kValueLogReadersMu};
  mutable std::vector<std::pair<uint64_t, std::shared_ptr<RandomAccessFile>>>
      readers_ GUARDED_BY(readers_mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_VLOG_VALUE_LOG_H_
