#ifndef LSMLAB_OBS_PERF_CONTEXT_H_
#define LSMLAB_OBS_PERF_CONTEXT_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace lsmlab {

/// Per-operation, per-thread counters for the read/write paths.
///
/// This is the instrument the tutorial's whole method rests on: attributing
/// an operation's I/O budget to the subsystem that spent it (filter probes,
/// fence-pointer seeks, block fetches, cache hits) instead of observing one
/// global number. Every field is a plain uint64 in thread-local storage, so
/// updating one costs a single non-atomic increment and is race-free by
/// construction; cross-thread aggregation happens only when a DB operation
/// folds its delta into the DB-wide StatsRegistry.
///
/// Usage: snapshot `*GetPerfContext()` (it is trivially copyable), run the
/// operation, subtract. Or Reset() and read absolute values when the thread
/// runs one operation at a time.
struct PerfContext {
  // --- Block I/O (counted inside format::ReadBlock, i.e. at exactly the
  // --- granularity the Env-level IoStats sees its Read calls) -------------
  uint64_t block_read_count = 0;   ///< physical block fetches (cache misses
                                   ///< and uncached reads)
  uint64_t block_read_bytes = 0;   ///< bytes of those fetches (incl. trailer)
  uint64_t block_cache_hit_count = 0;
  uint64_t block_cache_miss_count = 0;

  // --- Point filters ------------------------------------------------------
  uint64_t filter_probe_count = 0;     ///< monolithic + partitioned probes
  uint64_t filter_negative_count = 0;  ///< probes that rejected the table
  uint64_t range_filter_probe_count = 0;
  uint64_t range_filter_negative_count = 0;

  // --- Index --------------------------------------------------------------
  uint64_t index_seek_count = 0;    ///< fence-pointer (index block) seeks
  uint64_t learned_index_seek_count = 0;
  uint64_t hash_index_hit_count = 0;
  uint64_t hash_index_absent_count = 0;

  // --- Batched reads (DB::MultiGet) ---------------------------------------
  uint64_t multiget_keys = 0;            ///< keys submitted across batches
  uint64_t multiget_filter_pruned = 0;   ///< per-key table probes a filter
                                         ///< rejected before any block I/O
  uint64_t multiget_coalesced_block_hits = 0;  ///< keys served by a block
                                               ///< another key already paid for

  // --- Memtable / merge ---------------------------------------------------
  uint64_t memtable_hit_count = 0;
  uint64_t merge_iter_seek_count = 0;  ///< Seek/SeekToFirst/SeekToLast fanouts
  uint64_t merge_iter_step_count = 0;  ///< Next/Prev advances

  // --- WAL ----------------------------------------------------------------
  uint64_t wal_append_count = 0;
  uint64_t wal_sync_count = 0;

  // --- Group commit -------------------------------------------------------
  uint64_t write_queue_wait_micros = 0;  ///< time parked in the writer queue
                                         ///< before a leader committed us (or
                                         ///< we became leader ourselves)
  uint64_t memtable_insert_cas_retries = 0;  ///< skiplist splice CASes this
                                             ///< writer lost during a
                                             ///< parallel group apply

  // --- Phase timers (microseconds) ----------------------------------------
  uint64_t get_micros = 0;
  uint64_t multiget_micros = 0;  ///< whole batches, not per key
  uint64_t seek_micros = 0;
  uint64_t next_micros = 0;
  uint64_t write_micros = 0;
  uint64_t flush_micros = 0;
  uint64_t compaction_micros = 0;

  void Reset() { *this = PerfContext(); }

  /// Field-wise `*this - since`; `since` must be an earlier snapshot of the
  /// same thread's context (all fields monotonic).
  PerfContext Delta(const PerfContext& since) const;

  /// "name=value" pairs, one per line; zero fields are omitted unless
  /// `include_zero`.
  std::string ToString(bool include_zero = false) const;
};

/// The calling thread's context. Never returns nullptr; the object lives
/// for the thread's lifetime.
PerfContext* GetPerfContext();

/// RAII stopwatch adding elapsed wall micros to `*field` on destruction.
class PerfTimer {
 public:
  explicit PerfTimer(uint64_t* field)
      : field_(field), start_(std::chrono::steady_clock::now()) {}
  ~PerfTimer() {
    *field_ += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

  PerfTimer(const PerfTimer&) = delete;
  PerfTimer& operator=(const PerfTimer&) = delete;

 private:
  uint64_t* field_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lsmlab

#endif  // LSMLAB_OBS_PERF_CONTEXT_H_
