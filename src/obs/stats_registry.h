#ifndef LSMLAB_OBS_STATS_REGISTRY_H_
#define LSMLAB_OBS_STATS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/perf_context.h"
#include "util/histogram.h"
#include "util/mutex.h"

namespace lsmlab {

/// Every named DB-wide counter. Names (TickerName) are stable identifiers:
/// they appear in GetProperty("lsmlab.stats") dumps that tests and tooling
/// grep, so renaming one is a breaking change.
enum class Ticker : uint32_t {
  // Read path.
  kGets,
  kGetsFound,
  kMemtableHits,
  kRunsProbed,
  kFilterSkips,       ///< runs skipped by monolithic point filters
  kRangeFilterSkips,  ///< runs skipped by range filters
  kSeparatedReads,
  // Batched reads (DB::MultiGet).
  kMultiGets,                    ///< MultiGet batches
  kMultiGetKeys,                 ///< keys across all batches
  kMultiGetFilterPruned,         ///< per-key probes pruned by filters
  kMultiGetCoalescedBlockHits,   ///< keys served by an already-paid block
  // Per-subsystem read costs (folded in from PerfContext deltas).
  kBlockReads,
  kBlockReadBytes,
  kBlockCacheHits,
  kBlockCacheMisses,
  kFilterProbes,
  kFilterNegatives,
  kIndexSeeks,
  kLearnedIndexSeeks,
  kHashIndexHits,
  kHashIndexAbsent,
  kMergeIterSeeks,
  kMergeIterSteps,
  // Write path.
  kWrites,
  kWalAppends,
  kWalSyncs,
  kWalGroupCommits,    ///< commit groups built by a leader
  kWalGroupFollowers,  ///< writers that rode along in someone else's group
  kWalSyncSkipped,     ///< group commits the durability policy left unsynced
  kVlogSyncs,          ///< write-path value-log syncs (skipped when a batch
                       ///< separated nothing)
  kWriteSlowdowns,
  kWriteStalls,
  kWriteSlowdownMicros,
  kWriteStallMicros,
  // Memtable apply phase. parallel + serial applies always sum to
  // wal.group_commits: every commit group takes exactly one apply path.
  kMemtableParallelApplies,   ///< groups applied by members concurrently
  kMemtableSerialApplies,     ///< groups applied by the leader under mu_
  kMemtableInsertCasRetries,  ///< lost skiplist splice CASes (contention)
  // Background pipeline.
  kFlushes,
  kCompactions,
  kBytesFlushed,
  kBytesCompacted,
  kTableFilesCreated,
  kTableFilesDeleted,

  kNumTickers,  // sentinel; keep last
};

/// Latency distributions kept alongside the tickers.
enum class PhaseHistogram : uint32_t {
  kGetMicros,
  kMultiGetMicros,  ///< whole-batch latency, not per key
  kWriteMicros,
  kWriteGroupSize,      ///< writers per commit group (count, not micros)
  kMemtableApplyMicros, ///< group apply phase, WAL I/O excluded (both paths)
  kFlushMicros,
  kCompactionMicros,

  kNumHistograms,  // sentinel; keep last
};

/// DB-wide registry of named atomic counters plus per-phase latency
/// histograms. One per DBImpl; safe for concurrent use from foreground and
/// background threads (tickers are relaxed atomics, histograms take a
/// private mutex). PerfContext measures one operation on one thread; the
/// registry is where those deltas accumulate into the process-lifetime view
/// that GetProperty("lsmlab.stats") reports.
class StatsRegistry {
 public:
  StatsRegistry() {
    for (auto& t : tickers_) {
      t.store(0, std::memory_order_relaxed);
    }
  }

  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void Add(Ticker ticker, uint64_t n = 1) {
    tickers_[static_cast<size_t>(ticker)].fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Get(Ticker ticker) const {
    return tickers_[static_cast<size_t>(ticker)].load(
        std::memory_order_relaxed);
  }

  void Record(PhaseHistogram h, double micros) {
    MutexLock lock(&hist_mu_);
    histograms_[static_cast<size_t>(h)].Add(micros);
  }

  /// Copy of one histogram, consistent at the moment of the call.
  Histogram GetHistogram(PhaseHistogram h) const {
    MutexLock lock(&hist_mu_);
    return histograms_[static_cast<size_t>(h)];
  }

  /// Folds one operation's PerfContext delta into the per-subsystem
  /// tickers. Call once per instrumented operation with
  /// `after.Delta(before)`.
  void MergePerfDelta(const PerfContext& delta);

  /// Full structured dump: one "ticker.<name>=<value>" line per ticker,
  /// then one "histogram.<name>: ..." summary line per phase histogram.
  std::string Dump() const;

  static const char* TickerName(Ticker ticker);
  static const char* HistogramName(PhaseHistogram h);

 private:
  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(Ticker::kNumTickers)>
      tickers_;
  mutable Mutex hist_mu_{LockRank::kStatsHistMu};
  std::array<Histogram,
             static_cast<size_t>(PhaseHistogram::kNumHistograms)>
      histograms_ GUARDED_BY(hist_mu_);
};

}  // namespace lsmlab

#endif  // LSMLAB_OBS_STATS_REGISTRY_H_
