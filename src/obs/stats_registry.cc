#include "obs/stats_registry.h"

namespace lsmlab {

const char* StatsRegistry::TickerName(Ticker ticker) {
  switch (ticker) {
    case Ticker::kGets:
      return "gets";
    case Ticker::kGetsFound:
      return "gets.found";
    case Ticker::kMemtableHits:
      return "memtable.hits";
    case Ticker::kRunsProbed:
      return "runs.probed";
    case Ticker::kFilterSkips:
      return "filter.run_skips";
    case Ticker::kRangeFilterSkips:
      return "rangefilter.run_skips";
    case Ticker::kSeparatedReads:
      return "vlog.separated_reads";
    case Ticker::kMultiGets:
      return "multiget.batches";
    case Ticker::kMultiGetKeys:
      return "multiget.keys";
    case Ticker::kMultiGetFilterPruned:
      return "multiget.filter_pruned";
    case Ticker::kMultiGetCoalescedBlockHits:
      return "multiget.coalesced_block_hits";
    case Ticker::kBlockReads:
      return "block.reads";
    case Ticker::kBlockReadBytes:
      return "block.read_bytes";
    case Ticker::kBlockCacheHits:
      return "block_cache.hits";
    case Ticker::kBlockCacheMisses:
      return "block_cache.misses";
    case Ticker::kFilterProbes:
      return "filter.probes";
    case Ticker::kFilterNegatives:
      return "filter.negatives";
    case Ticker::kIndexSeeks:
      return "index.seeks";
    case Ticker::kLearnedIndexSeeks:
      return "index.learned_seeks";
    case Ticker::kHashIndexHits:
      return "index.hash_hits";
    case Ticker::kHashIndexAbsent:
      return "index.hash_absent";
    case Ticker::kMergeIterSeeks:
      return "merge_iter.seeks";
    case Ticker::kMergeIterSteps:
      return "merge_iter.steps";
    case Ticker::kWrites:
      return "writes";
    case Ticker::kWalAppends:
      return "wal.appends";
    case Ticker::kWalSyncs:
      return "wal.syncs";
    case Ticker::kWalGroupCommits:
      return "wal.group_commits";
    case Ticker::kWalGroupFollowers:
      return "wal.group_followers";
    case Ticker::kWalSyncSkipped:
      return "wal.sync_skipped";
    case Ticker::kVlogSyncs:
      return "vlog.syncs";
    case Ticker::kWriteSlowdowns:
      return "write.slowdowns";
    case Ticker::kWriteStalls:
      return "write.stalls";
    case Ticker::kWriteSlowdownMicros:
      return "write.slowdown_micros";
    case Ticker::kWriteStallMicros:
      return "write.stall_micros";
    case Ticker::kMemtableParallelApplies:
      return "memtable.parallel_applies";
    case Ticker::kMemtableSerialApplies:
      return "memtable.serial_applies";
    case Ticker::kMemtableInsertCasRetries:
      return "memtable.insert_cas_retries";
    case Ticker::kFlushes:
      return "flushes";
    case Ticker::kCompactions:
      return "compactions";
    case Ticker::kBytesFlushed:
      return "bytes.flushed";
    case Ticker::kBytesCompacted:
      return "bytes.compacted";
    case Ticker::kTableFilesCreated:
      return "table_files.created";
    case Ticker::kTableFilesDeleted:
      return "table_files.deleted";
    case Ticker::kNumTickers:
      break;
  }
  return "unknown";
}

const char* StatsRegistry::HistogramName(PhaseHistogram h) {
  switch (h) {
    case PhaseHistogram::kGetMicros:
      return "get_micros";
    case PhaseHistogram::kMultiGetMicros:
      return "multiget_micros";
    case PhaseHistogram::kWriteMicros:
      return "write_micros";
    case PhaseHistogram::kWriteGroupSize:
      return "write_group_size";
    case PhaseHistogram::kMemtableApplyMicros:
      return "memtable_apply_micros";
    case PhaseHistogram::kFlushMicros:
      return "flush_micros";
    case PhaseHistogram::kCompactionMicros:
      return "compaction_micros";
    case PhaseHistogram::kNumHistograms:
      break;
  }
  return "unknown";
}

void StatsRegistry::MergePerfDelta(const PerfContext& delta) {
  auto add = [this](Ticker t, uint64_t n) {
    if (n != 0) {
      Add(t, n);
    }
  };
  add(Ticker::kMultiGetKeys, delta.multiget_keys);
  add(Ticker::kMultiGetFilterPruned, delta.multiget_filter_pruned);
  add(Ticker::kMultiGetCoalescedBlockHits,
      delta.multiget_coalesced_block_hits);
  add(Ticker::kBlockReads, delta.block_read_count);
  add(Ticker::kBlockReadBytes, delta.block_read_bytes);
  add(Ticker::kBlockCacheHits, delta.block_cache_hit_count);
  add(Ticker::kBlockCacheMisses, delta.block_cache_miss_count);
  add(Ticker::kFilterProbes, delta.filter_probe_count);
  add(Ticker::kFilterNegatives, delta.filter_negative_count);
  add(Ticker::kIndexSeeks, delta.index_seek_count);
  add(Ticker::kLearnedIndexSeeks, delta.learned_index_seek_count);
  add(Ticker::kHashIndexHits, delta.hash_index_hit_count);
  add(Ticker::kHashIndexAbsent, delta.hash_index_absent_count);
  add(Ticker::kMergeIterSeeks, delta.merge_iter_seek_count);
  add(Ticker::kMergeIterSteps, delta.merge_iter_step_count);
  add(Ticker::kWalAppends, delta.wal_append_count);
  add(Ticker::kWalSyncs, delta.wal_sync_count);
  add(Ticker::kMemtableInsertCasRetries, delta.memtable_insert_cas_retries);
}

std::string StatsRegistry::Dump() const {
  std::string out;
  for (uint32_t i = 0; i < static_cast<uint32_t>(Ticker::kNumTickers); i++) {
    const Ticker t = static_cast<Ticker>(i);
    out.append("ticker.");
    out.append(TickerName(t));
    out.push_back('=');
    out.append(std::to_string(Get(t)));
    out.push_back('\n');
  }
  for (uint32_t i = 0;
       i < static_cast<uint32_t>(PhaseHistogram::kNumHistograms); i++) {
    const PhaseHistogram h = static_cast<PhaseHistogram>(i);
    out.append("histogram.");
    out.append(HistogramName(h));
    out.append(": ");
    out.append(GetHistogram(h).ToString());
    out.push_back('\n');
  }
  return out;
}

}  // namespace lsmlab
