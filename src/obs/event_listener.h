#ifndef LSMLAB_OBS_EVENT_LISTENER_H_
#define LSMLAB_OBS_EVENT_LISTENER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lsmlab {

/// Metadata of one SSTable file reported through listener callbacks.
struct TableFileInfo {
  uint64_t file_number = 0;
  uint64_t file_size = 0;
  int level = 0;
  std::string smallest_user_key;
  std::string largest_user_key;
};

struct FlushJobInfo {
  std::string db_name;
  /// True when the flush ran on the background worker (a frozen immutable
  /// memtable); false for inline/recovery flushes of the live memtable.
  bool background = false;
  uint64_t bytes_written = 0;
  uint64_t micros = 0;  ///< wall time of the table build + install
  std::vector<TableFileInfo> outputs;
  Status status;
};

struct CompactionJobInfo {
  std::string db_name;
  int input_level = 0;
  int output_level = 0;
  uint64_t bytes_written = 0;
  uint64_t micros = 0;
  std::vector<TableFileInfo> inputs;  ///< includes output-level overlaps
  std::vector<TableFileInfo> outputs;
  Status status;
};

struct WriteStallInfo {
  enum class Cause {
    kSlowdown,      ///< L0 slowdown trigger: ~1ms delay injected
    kMemtableFull,  ///< previous memtable still flushing
    kL0Stop,        ///< L0 stop trigger: writer blocked on compaction
  };
  std::string db_name;
  Cause cause = Cause::kSlowdown;
  int l0_runs = 0;
};

struct TableFileDeletionInfo {
  std::string db_name;
  uint64_t file_number = 0;
};

/// Observer of DB lifecycle events, registered via Options::listeners.
///
/// Contract (see DESIGN.md "Observability"):
///  - Callbacks are invoked with NO DB mutex held, so they may call back
///    into read-side DB methods (GetStats, GetProperty, Get, iterators).
///    They must not destroy the DB.
///  - Events for one DB are delivered in operation order, from the thread
///    that performed the operation (inline writes deliver at the end of the
///    triggering call; the background worker delivers between tasks). They
///    may therefore lag the operation itself — synchronize in the listener
///    when a test or tool needs to wait for one.
///  - Callbacks run on the critical path of flush/compaction scheduling:
///    keep them short or hand off to another thread.
class EventListener {
 public:
  virtual ~EventListener() = default;

  virtual void OnFlushBegin(const FlushJobInfo& /*info*/) {}
  virtual void OnFlushEnd(const FlushJobInfo& /*info*/) {}
  virtual void OnCompactionBegin(const CompactionJobInfo& /*info*/) {}
  virtual void OnCompactionEnd(const CompactionJobInfo& /*info*/) {}
  virtual void OnWriteStall(const WriteStallInfo& /*info*/) {}
  virtual void OnTableFileCreated(const TableFileInfo& /*info*/) {}
  virtual void OnTableFileDeleted(const TableFileDeletionInfo& /*info*/) {}
};

}  // namespace lsmlab

#endif  // LSMLAB_OBS_EVENT_LISTENER_H_
