#include "obs/perf_context.h"

#include <vector>

namespace lsmlab {

namespace {

thread_local PerfContext t_perf_context;

/// Visits every field once, pairing it with its dump name. Centralizing the
/// field list here keeps Delta/ToString in lockstep when counters are added.
template <typename Fn>
void ForEachField(PerfContext& ctx, const Fn& fn) {
  fn("block_read_count", ctx.block_read_count);
  fn("block_read_bytes", ctx.block_read_bytes);
  fn("block_cache_hit_count", ctx.block_cache_hit_count);
  fn("block_cache_miss_count", ctx.block_cache_miss_count);
  fn("filter_probe_count", ctx.filter_probe_count);
  fn("filter_negative_count", ctx.filter_negative_count);
  fn("range_filter_probe_count", ctx.range_filter_probe_count);
  fn("range_filter_negative_count", ctx.range_filter_negative_count);
  fn("index_seek_count", ctx.index_seek_count);
  fn("learned_index_seek_count", ctx.learned_index_seek_count);
  fn("hash_index_hit_count", ctx.hash_index_hit_count);
  fn("hash_index_absent_count", ctx.hash_index_absent_count);
  fn("multiget_keys", ctx.multiget_keys);
  fn("multiget_filter_pruned", ctx.multiget_filter_pruned);
  fn("multiget_coalesced_block_hits", ctx.multiget_coalesced_block_hits);
  fn("memtable_hit_count", ctx.memtable_hit_count);
  fn("merge_iter_seek_count", ctx.merge_iter_seek_count);
  fn("merge_iter_step_count", ctx.merge_iter_step_count);
  fn("wal_append_count", ctx.wal_append_count);
  fn("wal_sync_count", ctx.wal_sync_count);
  fn("write_queue_wait_micros", ctx.write_queue_wait_micros);
  fn("memtable_insert_cas_retries", ctx.memtable_insert_cas_retries);
  fn("get_micros", ctx.get_micros);
  fn("multiget_micros", ctx.multiget_micros);
  fn("seek_micros", ctx.seek_micros);
  fn("next_micros", ctx.next_micros);
  fn("write_micros", ctx.write_micros);
  fn("flush_micros", ctx.flush_micros);
  fn("compaction_micros", ctx.compaction_micros);
}

}  // namespace

PerfContext* GetPerfContext() { return &t_perf_context; }

PerfContext PerfContext::Delta(const PerfContext& since) const {
  PerfContext out = *this;
  PerfContext base = since;  // mutable copies: one visitor serves both
  std::vector<uint64_t> base_values;
  ForEachField(base, [&base_values](const char*, uint64_t& value) {
    base_values.push_back(value);
  });
  size_t i = 0;
  ForEachField(out, [&base_values, &i](const char*, uint64_t& value) {
    value -= base_values[i++];
  });
  return out;
}

std::string PerfContext::ToString(bool include_zero) const {
  std::string out;
  PerfContext copy = *this;
  ForEachField(copy, [&out, include_zero](const char* name, uint64_t& value) {
    if (value == 0 && !include_zero) {
      return;
    }
    out.append(name);
    out.push_back('=');
    out.append(std::to_string(value));
    out.push_back('\n');
  });
  return out;
}

}  // namespace lsmlab
