// Design-space explorer (tutorial Module III): given a workload mix, rank
// LSM designs by modeled I/O cost and validate the winner empirically on
// the in-memory counting environment.
//
//   ./example_design_space_explorer [zero_lookups existing_lookups scans writes]
//
// Fractions default to a balanced mix; they are normalized automatically.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/db.h"
#include "storage/env.h"
#include "tuning/navigator.h"
#include "workload/keygen.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace lsmlab;

  WorkloadMix mix;
  if (argc == 5) {
    mix.zero_result_lookups = std::atof(argv[1]);
    mix.existing_lookups = std::atof(argv[2]);
    mix.short_scans = std::atof(argv[3]);
    mix.writes = std::atof(argv[4]);
  }
  mix = mix.Normalized();
  std::printf(
      "workload: %.0f%% empty lookups, %.0f%% lookups, %.0f%% scans, "
      "%.0f%% writes\n",
      mix.zero_result_lookups * 100, mix.existing_lookups * 100,
      mix.short_scans * 100, mix.writes * 100);

  const uint64_t kEntries = 200000;
  const uint64_t kMemory = 1 << 20;
  auto candidates = NavigateDesignSpace(kEntries, 72, kMemory, mix);
  std::printf("\ntop designs by modeled cost (of %zu explored):\n",
              candidates.size());
  for (size_t i = 0; i < 5 && i < candidates.size(); i++) {
    std::printf("  %zu. %s\n", i + 1, candidates[i].Describe().c_str());
  }
  std::printf("  ...\n  worst: %s\n", candidates.back().Describe().c_str());

  // Validate the best and worst designs empirically.
  auto run_design = [&](const LsmDesignSpec& spec) {
    std::unique_ptr<Env> env(NewMemEnv());
    Options options;
    options.env = env.get();
    options.merge_policy =
        spec.policy == LsmDesignSpec::Policy::kLeveling
            ? MergePolicy::kLeveling
            : (spec.policy == LsmDesignSpec::Policy::kTiering
                   ? MergePolicy::kTiering
                   : MergePolicy::kLazyLeveling);
    options.size_ratio = spec.size_ratio;
    options.write_buffer_size = spec.buffer_bytes;
    options.filter_bits_per_key = spec.filter_bits_per_key;
    options.level0_compaction_trigger = 2;
    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/explore", &db).ok()) {
      return -1.0;
    }
    WorkloadSpec wspec;
    wspec.key_domain = 1 << 24;
    wspec.value_bytes = 64;
    wspec.put_fraction = mix.writes;
    wspec.get_fraction = mix.zero_result_lookups + mix.existing_lookups;
    wspec.scan_fraction = mix.short_scans;
    wspec.scan_width = 16;
    auto ops = GenerateWorkload(wspec, 100000);
    std::string value;
    std::vector<std::pair<std::string, std::string>> results;
    for (const Op& op : ops) {
      switch (op.kind) {
        case Op::Kind::kPut:
          db->Put({}, op.key, op.value).IgnoreError();
          break;
        case Op::Kind::kGet:
          db->Get({}, op.key, &value).IgnoreError();
          break;
        case Op::Kind::kScan:
          db->Scan({}, op.key, op.end_key, 16, &results).IgnoreError();
          break;
        default:
          break;
      }
    }
    const IoStats* io = env->io_stats();
    return static_cast<double>(io->block_reads.load() +
                               io->block_writes.load()) /
           ops.size();
  };

  std::printf("\nempirical check (I/Os per op over 100k mixed ops):\n");
  std::printf("  best  design: %.3f\n", run_design(candidates.front().spec));
  std::printf("  worst design: %.3f\n", run_design(candidates.back().spec));
  return 0;
}
