// Robust tuning demo (tutorial III-2; Endure [35]): tune an LSM for an
// expected workload, then watch how the nominal and robust designs cope as
// the observed workload drifts away from the expectation.
//
//   ./example_robust_tuning_demo

#include <cstdio>

#include "tuning/endure.h"

int main() {
  using namespace lsmlab;

  WorkloadMix expected;
  expected.writes = 0.80;
  expected.zero_result_lookups = 0.10;
  expected.existing_lookups = 0.07;
  expected.short_scans = 0.03;

  const double rho = 0.5;
  auto result = RobustTune(50'000'000, 64, 256 << 20, expected, rho, 512);

  std::printf("expected workload: 80%% writes / 10%% empty gets / 7%% gets /"
              " 3%% scans\n\n");
  std::printf("nominal design : %s\n", result.nominal.Describe().c_str());
  std::printf("robust  design : %s   (rho=%.2f)\n\n",
              result.robust.Describe().c_str(), rho);

  // Drift the workload toward read-heavy and compare modeled costs.
  std::printf("%-28s %14s %14s\n", "observed workload", "nominal cost",
              "robust cost");
  for (double drift : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    WorkloadMix observed;
    observed.writes = expected.writes * (1 - drift);
    observed.zero_result_lookups =
        expected.zero_result_lookups + 0.3 * drift;
    observed.existing_lookups = expected.existing_lookups + 0.4 * drift;
    observed.short_scans = expected.short_scans + 0.1 * drift;
    observed = observed.Normalized();
    char label[64];
    std::snprintf(label, sizeof(label), "drift=%.1f (writes=%.0f%%)", drift,
                  observed.writes * 100);
    std::printf("%-28s %14.4f %14.4f\n", label,
                WorkloadCost(result.nominal.spec, observed),
                WorkloadCost(result.robust.spec, observed));
  }
  std::printf(
      "\nThe nominal design wins at the expected point but degrades as the\n"
      "workload drifts; the robust design pays a small premium up front\n"
      "and stays flat — Endure's core result.\n");
  return 0;
}
