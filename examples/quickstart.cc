// Quickstart: open a database on the local filesystem, write, read, scan,
// snapshot, and inspect the tree shape.
//
//   ./example_quickstart [db_path]

#include <cstdio>
#include <memory>
#include <string>

#include "core/db.h"
#include "storage/env.h"

int main(int argc, char** argv) {
  using namespace lsmlab;
  const std::string path = argc > 1 ? argv[1] : "/tmp/lsmlab_quickstart";

  std::unique_ptr<Env> env(NewPosixEnv());
  Options options;
  options.env = env.get();
  options.merge_policy = MergePolicy::kLeveling;
  options.size_ratio = 10;
  options.filter_bits_per_key = 10;
  // Small buffer so this demo actually exercises flushes and compactions.
  options.write_buffer_size = 64 << 10;

  std::unique_ptr<DB> db;
  Status s = DB::Open(options, path, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("opened %s\n", path.c_str());

  // Writes: puts and deletes are buffered in the memtable and logged to
  // the WAL; full buffers flush to sorted runs automatically.
  for (int i = 0; i < 10000; i++) {
    char key[32], value[32];
    std::snprintf(key, sizeof(key), "user%06d", i);
    std::snprintf(value, sizeof(value), "profile-%d", i * 7);
    s = db->Put({}, key, value);
    if (!s.ok()) {
      std::fprintf(stderr, "put: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  db->Delete({}, "user000123").IgnoreError();

  // Point reads.
  std::string value;
  s = db->Get({}, "user004242", &value);
  std::printf("get user004242 -> %s\n",
              s.ok() ? value.c_str() : s.ToString().c_str());
  s = db->Get({}, "user000123", &value);
  std::printf("get user000123 -> %s (deleted)\n", s.ToString().c_str());

  // Batched point reads: one consistent view for the whole batch, filters
  // probed before any data I/O, shared data blocks fetched once. Each key
  // gets its own status; absent keys are NotFound, not an error.
  const std::vector<Slice> batch = {"user000100", "user000123",
                                    "user009999", "user999999"};
  std::vector<std::string> batch_values;
  std::vector<Status> batch_statuses;
  db->MultiGet({}, batch, &batch_values, &batch_statuses);
  for (size_t i = 0; i < batch.size(); i++) {
    std::printf("multiget %s -> %s\n", batch[i].ToString().c_str(),
                batch_statuses[i].ok() ? batch_values[i].c_str()
                                       : batch_statuses[i].ToString().c_str());
  }

  // Snapshot isolation: updates after the snapshot stay invisible to it.
  const Snapshot* snap = db->GetSnapshot();
  db->Put({}, "user004242", "updated").IgnoreError();
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  db->Get(at_snap, "user004242", &value).IgnoreError();
  std::printf("snapshot read user004242 -> %s\n", value.c_str());
  db->Get({}, "user004242", &value).IgnoreError();
  std::printf("latest   read user004242 -> %s\n", value.c_str());
  db->ReleaseSnapshot(snap);

  // Range scan.
  std::vector<std::pair<std::string, std::string>> results;
  db->Scan({}, "user000100", "user000110", 100, &results).IgnoreError();
  std::printf("scan [user000100, user000110]: %zu entries\n", results.size());
  for (const auto& [k, v] : results) {
    std::printf("  %s = %s\n", k.c_str(), v.c_str());
  }

  // Shape and stats.
  DBStats stats = db->GetStats();
  std::printf("\ntree shape:\n%s", db->DebugShape().c_str());
  std::printf("flushes=%llu compactions=%llu write_amp=%.2f\n",
              (unsigned long long)stats.flushes,
              (unsigned long long)stats.compactions,
              stats.WriteAmplification());
  std::printf("gets=%llu filter_skips=%llu\n",
              (unsigned long long)stats.gets,
              (unsigned long long)stats.filter_skips);
  return 0;
}
