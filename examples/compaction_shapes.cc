// Compaction shapes (tutorial I-2, Module II-iv): ingest the same data
// under each merge policy and print the resulting tree shapes side by
// side, with their measured write amplification and lookup costs.
//
//   ./example_compaction_shapes

#include <cstdio>
#include <memory>

#include "core/db.h"
#include "storage/env.h"
#include "util/random.h"
#include "workload/keygen.h"
#include "workload/workload.h"

int main() {
  using namespace lsmlab;
  struct Cfg {
    const char* name;
    MergePolicy policy;
  } cfgs[] = {
      {"leveling", MergePolicy::kLeveling},
      {"tiering", MergePolicy::kTiering},
      {"lazy-leveling", MergePolicy::kLazyLeveling},
      {"fifo", MergePolicy::kFifo},
  };

  for (const Cfg& cfg : cfgs) {
    std::unique_ptr<Env> env(NewMemEnv());
    Options options;
    options.env = env.get();
    options.merge_policy = cfg.policy;
    options.size_ratio = 4;
    options.write_buffer_size = 32 << 10;
    options.max_file_size = 32 << 10;
    options.level0_compaction_trigger = 2;
    options.fifo_size_budget = 1 << 20;

    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/shapes", &db).ok()) {
      return 1;
    }
    Random rng(9);
    for (int i = 0; i < 40000; i++) {
      const std::string key = EncodeKey((rng.Next64() >> 21) * 2);  // even
      db->Put({}, key, ValueForKey(key, 64)).IgnoreError();
    }

    // Lookup cost: absent keys, filters on by default.
    const uint64_t before = env->io_stats()->block_reads.load();
    std::string value;
    Random qrng(11);
    for (int i = 0; i < 2000; i++) {
      // Odd keys are never written, but fall inside the written key range,
      // so only filters (not fence pruning) can skip them.
      db->Get({}, EncodeKey(((qrng.Next64() >> 21) * 2) | 1), &value).IgnoreError();
    }
    const double get_ios =
        (env->io_stats()->block_reads.load() - before) / 2000.0;

    DBStats stats = db->GetStats();
    std::printf("=== %s (T=%d) ===\n%s", cfg.name, options.size_ratio,
                db->DebugShape().c_str());
    std::printf(
        "write_amp=%.2f  runs=%d  files=%d  zero-lookup I/Os=%.3f\n\n",
        stats.WriteAmplification(), stats.total_runs, stats.total_files,
        get_ios);
  }
  return 0;
}
