// Range-filter laboratory (tutorial §II-3): load a key-sparse dataset,
// then watch how each range-filter design changes the I/O cost of empty
// range scans of different widths.
//
//   ./example_range_filter_lab

#include <cstdio>
#include <memory>

#include "core/db.h"
#include "rangefilter/range_filter.h"
#include "storage/env.h"
#include "util/random.h"
#include "workload/keygen.h"
#include "workload/workload.h"

int main() {
  using namespace lsmlab;

  std::unique_ptr<const RangeFilterPolicy> filters[] = {
      nullptr,
      std::unique_ptr<const RangeFilterPolicy>(NewPrefixBloomRangeFilter(6, 12)),
      std::unique_ptr<const RangeFilterPolicy>(NewSurfRangeFilter(8)),
      std::unique_ptr<const RangeFilterPolicy>(NewRosettaRangeFilter(22, 26)),
      std::unique_ptr<const RangeFilterPolicy>(NewSnarfRangeFilter(12)),
  };
  const char* names[] = {"no filter", "prefix bloom", "SuRF", "Rosetta",
                         "SNARF"};

  std::printf("%-14s %14s %14s %14s\n", "filter", "w=16 I/Os", "w=4096 I/Os",
              "runs skipped");
  for (size_t f = 0; f < std::size(filters); f++) {
    std::unique_ptr<Env> env(NewMemEnv());
    Options options;
    options.env = env.get();
    options.merge_policy = MergePolicy::kTiering;  // many runs
    options.size_ratio = 4;
    options.write_buffer_size = 64 << 10;
    options.level0_compaction_trigger = 2;
    options.filter_allocation = FilterAllocation::kNone;
    options.range_filter_policy = filters[f].get();

    std::unique_ptr<DB> db;
    if (!DB::Open(options, "/lab", &db).ok()) {
      return 1;
    }
    // Keys on a lattice (gaps of 2^24) so empty ranges are plentiful.
    Random rng(1);
    for (int i = 0; i < 30000; i++) {
      const std::string key = EncodeKey(rng.Uniform(1 << 20) << 24);
      db->Put({}, key, ValueForKey(key, 32)).IgnoreError();
    }

    double ios[2];
    uint64_t skipped_total = 0;
    int w = 0;
    for (uint64_t width : {16ull, 4096ull}) {
      Random qrng(7);
      const uint64_t before = env->io_stats()->block_reads.load();
      DBStats sbefore = db->GetStats();
      const int kScans = 300;
      for (int i = 0; i < kScans; i++) {
        const uint64_t base = (qrng.Uniform(1 << 20) << 24) + (1 << 23);
        std::vector<std::pair<std::string, std::string>> results;
        db->Scan({}, EncodeKey(base), EncodeKey(base + width), 100,
                 &results).IgnoreError();
      }
      DBStats safter = db->GetStats();
      ios[w++] = static_cast<double>(env->io_stats()->block_reads.load() -
                                     before) /
                 kScans;
      skipped_total += safter.range_filter_skips - sbefore.range_filter_skips;
    }
    std::printf("%-14s %14.2f %14.2f %14llu\n", names[f], ios[0], ios[1],
                (unsigned long long)skipped_total);
  }
  std::printf(
      "\nLower is better. Rosetta shines on short ranges, SuRF holds up\n"
      "on long ones, prefix Bloom only answers within its prefix bucket.\n");
  return 0;
}
