// Regenerates the libFuzzer seed corpora under fuzz/corpora/. Each seed is
// a structurally valid artifact built with the library's own writers (plus
// a few deterministic pseudo-random inputs from tests/fuzz_inputs.h), so
// the fuzzers start from deep coverage instead of rediscovering the wire
// formats byte by byte.
//
// Usage: make_corpus <corpora-dir>      (typically fuzz/corpora)

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/version.h"
#include "core/write_batch.h"
#include "filter/filter_policy.h"
#include "format/block_builder.h"
#include "format/sstable_builder.h"
#include "rangefilter/range_filter.h"
#include "storage/env.h"
#include "tests/fuzz_inputs.h"
#include "wal/log_writer.h"
#include "workload/keygen.h"

namespace lsmlab {
namespace {

void WriteSeed(const std::string& dir, const std::string& target,
               const std::string& name, const std::string& contents) {
  const std::filesystem::path path =
      std::filesystem::path(dir) / target / name;
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    std::exit(1);
  }
}

/// A handful of small deterministic pseudo-random seeds so each fuzzer's
/// corpus also covers non-structured byte shapes.
void WriteRandomSeeds(const std::string& dir, const std::string& target,
                      uint64_t seed) {
  int i = 0;
  for (const std::string& input : FuzzInputs(seed, 3)) {
    if (input.size() > 512) continue;  // keep checked-in seeds small
    char name[32];
    std::snprintf(name, sizeof(name), "random-%02d", i++);
    WriteSeed(dir, target, name, input);
  }
}

std::string BuildBlock(bool hash_index) {
  TableOptions opts;
  opts.use_hash_index = hash_index;
  BlockBuilder builder(&opts);
  for (int i = 0; i < 40; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    builder.Add(key, "value");
  }
  return builder.Finish().ToString();
}

std::string BuildTable(Env* env) {
  TableOptions opts;
  opts.block_size = 256;
  std::unique_ptr<WritableFile> file;
  if (!env->NewWritableFile("/seed_table", &file).ok()) std::exit(1);
  SSTableBuilder builder(opts, file.get());
  for (int i = 0; i < 60; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    builder.Add(key, "value");
  }
  if (!builder.Finish().ok()) std::exit(1);
  std::string contents;
  if (!ReadFileToString(env, "/seed_table", &contents).ok()) std::exit(1);
  return contents;
}

std::string BuildWal(Env* env) {
  std::unique_ptr<WritableFile> file;
  if (!env->NewWritableFile("/seed_wal", &file).ok()) std::exit(1);
  wal::Writer writer(file.get());
  writer.AddRecord("small record").IgnoreError();
  writer.AddRecord(std::string(300, 'x')).IgnoreError();
  writer.AddRecord("").IgnoreError();
  std::string contents;
  if (!ReadFileToString(env, "/seed_wal", &contents).ok()) std::exit(1);
  return contents;
}

std::string BuildVersionEdit() {
  VersionEdit edit;
  edit.SetLogNumber(7);
  edit.SetNextFileNumber(12);
  edit.SetLastSequence(99);
  FileMetaData meta;
  meta.number = 11;
  meta.file_size = 4096;
  meta.smallest = "aaa";
  meta.largest = "zzz";
  meta.run_seq = 3;
  edit.AddFile(1, meta);
  std::string encoded;
  edit.EncodeTo(&encoded);
  return encoded;
}

std::string BuildWriteBatch() {
  WriteBatch batch;
  batch.Put("key-one", "value-one");
  batch.Delete("key-two");
  batch.Put("key-three", std::string(100, 'v'));
  return batch.Contents().ToString();
}

void BuildFilterSeeds(const std::string& dir) {
  std::vector<std::string> key_storage;
  for (int i = 0; i < 50; i++) {
    key_storage.push_back(EncodeKey(static_cast<uint64_t>(i) * 7));
  }
  std::vector<Slice> keys(key_storage.begin(), key_storage.end());

  // The policy index prefix byte must match fuzz_filter.cc's ordering:
  // point policies 0-4, range policies 5-8.
  std::vector<std::unique_ptr<const FilterPolicy>> point;
  point.emplace_back(NewBloomFilterPolicy(10));
  point.emplace_back(NewBlockedBloomFilterPolicy(10));
  point.emplace_back(NewCuckooFilterPolicy(12));
  point.emplace_back(NewRibbonFilterPolicy(10));
  point.emplace_back(NewElasticBloomFilterPolicy(12, 4, 2));
  for (size_t p = 0; p < point.size(); p++) {
    std::string seed(1, static_cast<char>(p));
    point[p]->CreateFilter(keys.data(), keys.size(), &seed);
    char name[32];
    std::snprintf(name, sizeof(name), "point-%02zu", p);
    WriteSeed(dir, "fuzz_filter", name, seed);
  }

  std::vector<std::unique_ptr<const RangeFilterPolicy>> range;
  range.emplace_back(NewPrefixBloomRangeFilter(6, 10));
  range.emplace_back(NewSurfRangeFilter(8));
  range.emplace_back(NewRosettaRangeFilter(20, 24));
  range.emplace_back(NewSnarfRangeFilter(10));
  for (size_t p = 0; p < range.size(); p++) {
    std::string seed(1, static_cast<char>(point.size() + p));
    range[p]->CreateFilter(keys, &seed);
    char name[32];
    std::snprintf(name, sizeof(name), "range-%02zu", p);
    WriteSeed(dir, "fuzz_filter", name, seed);
  }
}

int MakeCorpus(const std::string& dir) {
  std::unique_ptr<Env> env(NewMemEnv());

  WriteSeed(dir, "fuzz_block", "plain-block", BuildBlock(false));
  WriteSeed(dir, "fuzz_block", "hash-index-block", BuildBlock(true));
  WriteRandomSeeds(dir, "fuzz_block", 101);

  WriteSeed(dir, "fuzz_sstable", "small-table", BuildTable(env.get()));
  WriteRandomSeeds(dir, "fuzz_sstable", 102);

  WriteSeed(dir, "fuzz_wal_record", "three-records", BuildWal(env.get()));
  WriteRandomSeeds(dir, "fuzz_wal_record", 103);

  WriteSeed(dir, "fuzz_version_edit", "add-file", BuildVersionEdit());
  WriteRandomSeeds(dir, "fuzz_version_edit", 104);

  WriteSeed(dir, "fuzz_write_batch", "put-delete-put", BuildWriteBatch());
  WriteRandomSeeds(dir, "fuzz_write_batch", 105);

  BuildFilterSeeds(dir);
  WriteRandomSeeds(dir, "fuzz_filter", 106);

  std::printf("wrote seed corpora under %s\n", dir.c_str());
  return 0;
}

}  // namespace
}  // namespace lsmlab

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpora-dir>\n", argv[0]);
    return 1;
  }
  return lsmlab::MakeCorpus(argv[1]);
}
