#!/usr/bin/env bash
# Static enforcement of the corruption contract over every file that
# decodes untrusted bytes (the audited set in tools/parser_audit.list; see
# DESIGN.md "Corruption safety contract").
#
# Three checks per audited file:
#   1. No assert(): asserts compile out under NDEBUG, so a corrupt input
#      that "can't happen" becomes memory corruption in release builds.
#      Escape hatch: a `builder-ok:` comment on the line marks a trusted
#      build-side invariant inside an otherwise-audited file.
#   2. No raw reinterpret_cast: type-punning untrusted bytes hides length
#      assumptions from review. Escape hatch: `cast-ok: <why>` on the line.
#   3. Every DecodeFixed16/32/64 and GetVarint32Ptr/GetVarint64Ptr call
#      carries a `bounds: <why>` annotation (same line or the line above)
#      stating which check guarantees the bytes are there — or uses the
#      checked Slice-based helpers instead.
#
# Plus a negative self-test: a seeded file violating all three rules must
# be flagged. This proves the greps are alive, not silently matching
# nothing (same spirit as tools/check_thread_safety.sh).
#
# Exit code 0 = clean, 1 = violations (or a dead self-test).

set -u
cd "$(dirname "$0")/.."

AUDIT_LIST="tools/parser_audit.list"

fail=0

# check_file <file> — prints violations, returns 1 if any.
check_file() {
  local file="$1"
  local bad=0

  # 1. assert() ban. \bassert\( does not match static_assert( (no word
  #    boundary after '_'), which is compile-time and welcome.
  local asserts
  asserts=$(grep -nE '\bassert\(' "$file" | grep -v 'builder-ok:')
  if [ -n "$asserts" ]; then
    echo "PARSERS: assert() in audited file $file (use Status::Corruption or a latched iterator status):"
    echo "$asserts" | sed 's/^/  /'
    bad=1
  fi

  # 2. reinterpret_cast ban; 'cast-ok:' may sit on the line or the line
  #    above.
  local casts
  casts=$(awk '
    {
      if ($0 ~ /reinterpret_cast/ && $0 !~ /cast-ok:/ && !prev_ok) {
        printf "%d:%s\n", NR, $0
      }
      prev_ok = ($0 ~ /cast-ok:/)
    }
  ' "$file")
  if [ -n "$casts" ]; then
    echo "PARSERS: raw reinterpret_cast in audited file $file (annotate 'cast-ok: <why>' if the source bytes are trusted):"
    echo "$casts" | sed 's/^/  /'
    bad=1
  fi

  # 3. Unannotated unchecked decodes. One 'bounds:' annotation covers the
  #    contiguous run that follows it: further comment lines and further
  #    decode lines extend the covered region; any other line ends it.
  local decodes
  decodes=$(awk '
    {
      is_comment = ($0 ~ /^[ \t]*\/\//)
      has_bounds = ($0 ~ /bounds:/)
      is_decode = ($0 ~ /(DecodeFixed(16|32|64)|GetVarint(32|64)Ptr)\(/)
      if (is_decode && !has_bounds && !covered) {
        printf "%d:%s\n", NR, $0
        next  # an unannotated decode does not extend coverage
      }
      if (has_bounds || (covered && (is_comment || is_decode))) covered = 1
      else covered = 0
    }
  ' "$file")
  if [ -n "$decodes" ]; then
    echo "PARSERS: unchecked decode without 'bounds:' annotation in $file (annotate the guaranteeing size check, or use GetFixed32/64 / GetVarint32/64):"
    echo "$decodes" | sed 's/^/  /'
    bad=1
  fi

  return "$bad"
}

echo "== audited parser files =="
while IFS= read -r file; do
  case "$file" in ''|'#'*) continue ;; esac
  if [ ! -f "$file" ]; then
    echo "PARSERS: audited file missing: $file (update $AUDIT_LIST)"
    fail=1
    continue
  fi
  check_file "$file" || fail=1
done < "$AUDIT_LIST"

if [ "$fail" -ne 0 ]; then
  echo "check_parsers: FAIL"
  exit 1
fi
echo "OK"

echo "== negative: seeded violations must be flagged =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/seeded_violation.cc" <<'EOF'
// Deliberately violates every rule: an assert on untrusted input, a raw
// reinterpret_cast, and an unannotated unchecked decode.
#include <cassert>
void Parse(const char* p, unsigned n) {
  assert(n >= 4);
  const unsigned* w = reinterpret_cast<const unsigned*>(p);
  unsigned v = DecodeFixed32(p);
  (void)w; (void)v;
}
EOF
if check_file "$tmp/seeded_violation.cc" > "$tmp/out.txt" 2>&1; then
  echo "check_parsers: FAIL (seeded violation passed cleanly; the checks are dead)"
  cat "$tmp/out.txt"
  exit 1
fi
for rule in 'assert()' 'reinterpret_cast' "without 'bounds:'"; do
  if ! grep -qF "$rule" "$tmp/out.txt"; then
    echo "check_parsers: FAIL (seeded violation not flagged for: $rule)"
    cat "$tmp/out.txt"
    exit 1
  fi
done
echo "OK (all three seeded violations flagged)"
echo "check_parsers: PASS"
