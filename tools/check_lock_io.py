#!/usr/bin/env python3
"""Interprocedural lock / blocking-I/O analyzer (static half of the invariant
whose runtime half lives in src/util/mutex.h + src/storage/io_stats.h).

Invariant: no blocking I/O (Env / file-handle calls, raw posix I/O, sleeps)
may execute while a ranked *no-io* engine mutex is held, except at sites
explicitly audited with an `io-under-lock-ok:` comment AND listed in
tools/lock_io_audit.list.

The tool:
  1. scans every .h/.cc under src/ (file list from compile_commands.json when
     present, e.g. build/compile_commands.json exported by the default cmake
     configure; falls back to walking src/),
  2. builds a call graph of project functions with per-site lock context
     (MutexLock scopes, raw Lock()/Unlock() spans, REQUIRES(...) entry locks),
  3. propagates "performs blocking I/O" through the graph (io_reach fixpoint),
  4. reports every path from a locked region to a blocking leaf with the full
     call chain, minus audited exceptions,
  5. cross-checks the audit list both ways (stale entries and unlisted
     annotations are errors) and the lock-rank tables
     (tools/lock_ranks.tsv vs the X-macro in src/util/lock_rank.h vs the
     actual `Mutex member{LockRank::k...}` declarations).

Frontends: `--frontend text` (default; pure stdlib, always available) or
`clang` (libclang refinement; this container ships no python libclang, so
`auto` degrades to text with a note). `--self-test` runs the analyzer over an
embedded tree with seeded violations and asserts they are flagged.

Exit status: 0 clean, 1 violations or consistency errors.
"""

import argparse
import json
import os
import re
import sys
import tempfile

ANNOTATION = "io-under-lock-ok"

# Blocking leaves, by receiver interface (types from src/storage/env.h).
FILE_TYPES = {"WritableFile", "RandomAccessFile", "SequentialFile"}
FILE_BLOCKING = {"Read", "Append", "Sync", "Flush", "Skip", "Close"}
ENV_BLOCKING = {
    "NewWritableFile", "NewRandomAccessFile", "NewSequentialFile",
    "GetChildren", "RemoveFile", "RenameFile", "GetFileSize", "FileExists",
    "CreateDir", "RemoveDir",
}
# Raw libc/posix calls (matched only receiver-less or ::-qualified).
RAW_BLOCKING = {
    "fsync", "fdatasync", "open", "pread", "pwrite", "fwrite", "fread",
    "fflush", "fopen", "fclose", "stat", "unlink", "mkdir",
    "sleep_for", "sleep_until",
}
KEYWORDS = {
    "if", "while", "for", "switch", "return", "sizeof", "catch", "new",
    "delete", "assert", "defined", "alignof", "decltype", "static_cast",
    "reinterpret_cast", "const_cast", "dynamic_cast", "static_assert",
    "throw", "noexcept", "alignas", "typeid", "co_await", "co_return",
}
ATTR_MACROS = ("GUARDED_BY", "ACQUIRED_AFTER", "ACQUIRED_BEFORE", "REQUIRES",
               "EXCLUDES", "RETURN_CAPABILITY", "CAPABILITY",
               "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
               "ASSERT_CAPABILITY", "ACQUIRE", "RELEASE", "TRY_ACQUIRE")
PTR_WRAPPERS = ("std::unique_ptr", "std::shared_ptr", "unique_ptr",
                "shared_ptr")


def preprocess(text):
    """Blank comments, strings, and preprocessor lines (same length; newlines
    kept). Returns (code, annotated_lines, comment_only_lines)."""
    out = list(text)
    n = len(text)
    i = 0
    annotated = set()
    line = 1
    line_has_code = {}
    line_has_comment = {}

    def blank(j):
        if out[j] != "\n":
            out[j] = " "

    # Pass 1: preprocessor lines (incl. backslash continuations).
    at_line_start = True
    in_pp = False
    while i < n:
        c = text[i]
        if at_line_start and not in_pp and text[i:].lstrip(" \t")[:1] == "#":
            in_pp = True
        if in_pp:
            if c == "\n":
                in_pp = text[i - 1] == "\\" if i > 0 else False
            else:
                blank(i)
        at_line_start = c == "\n"
        i += 1
    text2 = "".join(out)

    # Pass 2: comments and string/char literals.
    i = 0
    while i < n:
        c = text2[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if text2.startswith("//", i):
            end = text2.find("\n", i)
            end = n if end < 0 else end
            if ANNOTATION in text2[i:end]:
                annotated.add(line)
            line_has_comment[line] = True
            for j in range(i, end):
                blank(j)
            i = end
            continue
        if text2.startswith("/*", i):
            end = text2.find("*/", i + 2)
            end = n - 2 if end < 0 else end
            seg = text2[i:end + 2]
            for k, part in enumerate(seg.split("\n")):
                if ANNOTATION in part:
                    annotated.add(line + k)
                line_has_comment[line + k] = True
            for j in range(i, end + 2):
                blank(j)
            line += seg.count("\n")
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and text2[j] != quote:
                if text2[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, min(j, n)):
                blank(k)
            i = min(j, n - 1) + 1
            continue
        if not c.isspace():
            line_has_code[line] = True
        i += 1
    code = "".join(out)
    comment_only = {ln for ln in line_has_comment if ln not in line_has_code}
    return code, annotated, comment_only


class Site:
    __slots__ = ("file", "line", "func", "callee", "method", "locks",
                 "annotated", "leaf", "targets")

    def __init__(self, file, line, func, callee, method, locks, annotated,
                 leaf, targets):
        self.file = file            # repo-relative path
        self.line = line
        self.func = func            # Function owning the site
        self.callee = callee        # normalized callee expression
        self.method = method        # last component
        self.locks = locks          # frozenset of held no-io lock names
        self.annotated = annotated
        self.leaf = leaf            # None or leaf-kind string
        self.targets = targets      # list of resolved Function keys


class Function:
    def __init__(self, key, file, line, cls, requires):
        self.key = key              # e.g. "DBImpl::FlushImmMemTable"
        self.file = file
        self.line = line
        self.cls = cls              # owning class key or None
        self.requires = requires    # qualified entry-lock names
        self.sites = []
        self.locals = {}            # name -> normalized type
        self.io_reach = None        # witness Site once known to reach I/O


class Scope:
    __slots__ = ("kind", "name", "acquired")

    def __init__(self, kind, name=""):
        self.kind = kind  # namespace|class|function|block|lambda|inline
        self.name = name
        self.acquired = []  # lock names acquired in this scope (MutexLock)


def strip_type(t):
    """Normalize a declared type to a bare class key."""
    t = t.strip()
    t = re.sub(r"\b(const|constexpr|static|mutable|volatile|inline)\b", "", t)
    t = t.strip()
    for w in PTR_WRAPPERS:
        if t.startswith(w + "<") and t.endswith(">"):
            t = t[len(w) + 1:-1]
            return strip_type(t)
    t = t.replace("*", "").replace("&", "").strip()
    if t.startswith("lsmlab::"):
        t = t[len("lsmlab::"):]
    return t


class Analyzer:
    def __init__(self, root, verbose=False):
        self.root = root
        self.verbose = verbose
        self.functions = {}       # key -> Function (first definition wins)
        self.class_members = {}   # class key -> {member: type}
        self.decl_requires = {}   # (class key, method) -> [lock exprs]
        self.mutex_members = []   # (class key, member, enum-or-None, file, ln)
        self.annotated_sites = [] # every Site carrying the annotation
        self.unresolved = []      # (file, line, callee) skipped calls
        self.rank_names = {}      # lock name -> (rank, io_ok) from tsv
        self.errors = []

    # -- rank tables ------------------------------------------------------
    def load_rank_tsv(self, path):
        if not os.path.exists(path):
            self.errors.append(f"missing rank table: {path}")
            return {}
        table = {}
        with open(path) as f:
            for ln, raw in enumerate(f, 1):
                s = raw.strip()
                if not s or s.startswith("#"):
                    continue
                parts = s.split("\t")
                if len(parts) != 3 or parts[2] not in ("io-ok", "no-io"):
                    self.errors.append(f"{path}:{ln}: malformed row: {s!r}")
                    continue
                table[parts[1]] = (int(parts[0]), parts[2] == "io-ok")
        return table

    def load_rank_header(self, path):
        """Parse X(kName, rank, "Lock::name", io_ok) rows from the X-macro."""
        if not os.path.exists(path):
            self.errors.append(f"missing rank header: {path}")
            return {}
        text = open(path).read()
        rows = {}
        for m in re.finditer(
                r'X\(\s*(k\w+)\s*,\s*(\d+)\s*,\s*"([^"]+)"\s*,\s*'
                r'(true|false)\s*\)', text):
            rows[m.group(1)] = (int(m.group(2)), m.group(3),
                                m.group(4) == "true")
        return rows

    def check_rank_tables(self, tsv_path, header_path):
        tsv = self.load_rank_tsv(tsv_path)
        hdr = self.load_rank_header(header_path)
        self.rank_names = dict(tsv)
        self.enum_to_name = {e: name for e, (_, name, _) in hdr.items()}
        hdr_by_name = {name: (rank, io) for (rank, name, io) in hdr.values()}
        for name, (rank, io_ok) in tsv.items():
            if name not in hdr_by_name:
                self.errors.append(
                    f"{tsv_path}: lock {name!r} has no X-macro row in "
                    f"{header_path}")
            elif hdr_by_name[name] != (rank, io_ok):
                self.errors.append(
                    f"rank table mismatch for {name!r}: tsv says "
                    f"{(rank, io_ok)}, header says {hdr_by_name[name]}")
        for name in hdr_by_name:
            if name not in tsv:
                self.errors.append(
                    f"{header_path}: lock {name!r} missing from {tsv_path}")

    def check_mutex_members(self):
        """Every Mutex member in src/ must be ranked, and its rank's name
        must equal the qualified declaration (tsv is the single source)."""
        for cls, member, enum, file, line in self.mutex_members:
            qual = f"{cls}::{member}" if cls else member
            if enum is None:
                self.errors.append(
                    f"{file}:{line}: unranked engine mutex member {qual!r}; "
                    f"add a LockRank (see tools/lock_ranks.tsv)")
                continue
            name = self.enum_to_name.get(enum)
            if name is None:
                self.errors.append(
                    f"{file}:{line}: {qual!r} uses unknown LockRank::{enum}")
            elif name != qual:
                self.errors.append(
                    f"{file}:{line}: {qual!r} declared with LockRank::{enum} "
                    f"whose registered name is {name!r}")

    # -- scanning ---------------------------------------------------------
    def scan_file(self, path):
        rel = os.path.relpath(path, self.root)
        text = open(path).read()
        code, annotated, comment_only = preprocess(text)
        scanner = _FileScanner(self, rel, code, annotated, comment_only)
        scanner.run()

    def qualify_lock(self, expr, func, cls):
        """Map a lock expression (`mu_`, `shard->mu`, `state_->mu`) to its
        registered name, or None if it is not a ranked lock."""
        expr = expr.replace(" ", "")
        parts = re.split(r"\.|->", expr)
        if len(parts) == 1:
            owner = cls
        else:
            owner = self.resolve_chain(parts[:-1], func, cls)
        member = parts[-1]
        if owner:
            qual = f"{owner}::{member}"
            if qual in self.rank_names:
                return qual
        # Fallback: unique suffix match against registered names. Tries the
        # partially-qualified form first (`Shard::mu` -> LruCache::Shard::mu)
        # and the bare member last (`readers_mu_` is unique; `mu_` is not).
        for needle in ([f"{owner}::{member}"] if owner else []) + [member]:
            hits = [n for n in self.rank_names
                    if n == needle or n.endswith("::" + needle)]
            if len(hits) == 1:
                return hits[0]
        return None

    def resolve_chain(self, parts, func, cls):
        """Resolve a receiver chain like ['options_', 'env'] to a class key."""
        if not parts:
            return None
        first = parts[0]
        t = None
        if func is not None and first in func.locals:
            t = func.locals[first]
        elif cls and first in self.class_members.get(cls, {}):
            t = self.class_members[cls][first]
        elif first == "this":
            t = cls
        else:
            # Unique match across all known class members (helps for
            # nested-class receivers like `state_` used from inner classes).
            hits = {m[first] for m in self.class_members.values()
                    if first in m}
            if len(hits) == 1:
                t = hits.pop()
        if t is None:
            return None
        for comp in parts[1:]:
            members = self.class_members.get(t)
            if members is None or comp not in members:
                return None
            t = members[comp]
        return t

    # -- fixpoint + reporting ---------------------------------------------
    def lookup(self, key):
        """Function lookup with a unique-suffix fallback so `Shard::Unref`
        finds `LruCache::Shard::Unref`."""
        f = self.functions.get(key)
        if f is not None:
            return f
        hits = [g for k, g in self.functions.items()
                if k.endswith("::" + key)]
        return hits[0] if len(hits) == 1 else None

    def requires_noio(self, f):
        return [q for q in f.requires
                if q in self.rank_names and not self.rank_names[q][1]]

    def site_counts_for_reach(self, f, site):
        if site.annotated:
            return False
        if self.requires_noio(f) and not site.locks:
            # Entry lock(s) released at this point: the caller's lock is the
            # same lock, so the call does not block under any mutex.
            return False
        return True

    def compute_io_reach(self):
        changed = True
        while changed:
            changed = False
            for f in self.functions.values():
                if f.io_reach is not None:
                    continue
                for site in f.sites:
                    if not self.site_counts_for_reach(f, site):
                        continue
                    if site.leaf:
                        f.io_reach = site
                        changed = True
                        break
                    for t in site.targets:
                        g = self.lookup(t)
                        if g is not None and g.io_reach is not None:
                            f.io_reach = site
                            changed = True
                            break
                    if f.io_reach is not None:
                        break

    def witness_chain(self, site, limit=12):
        chain = [site]
        while chain[-1].leaf is None and len(chain) < limit:
            nxt = None
            for t in chain[-1].targets:
                g = self.lookup(t)
                if g is not None and g.io_reach is not None:
                    nxt = g.io_reach
                    break
            if nxt is None:
                break
            chain.append(nxt)
        return chain

    def find_violations(self):
        violations = []
        for f in self.functions.values():
            for site in f.sites:
                if not site.locks or site.annotated:
                    continue
                reaches = site.leaf is not None or any(
                    (g := self.lookup(t)) is not None
                    and g.io_reach is not None
                    for t in site.targets)
                if reaches:
                    violations.append(site)
        return violations


CALL_RE = re.compile(
    r"((?:::)?[A-Za-z_]\w*(?:\s*(?:\.|->|::)\s*~?[A-Za-z_]\w*)*)\s*\(")
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&\s*([^()]+?)\s*\)")
LOCK_CALL_RE = re.compile(r"([\w.>\-]+?)\s*(?:\.|->)\s*(Lock|Unlock)\s*\(")
DECL_RE = re.compile(
    r"^\s*([A-Za-z_][\w:]*(?:<[^;={}]*?>)?)\s*[*&]*\s+(\w+)\s*"
    r"(?:=|\(|\{|;|\s*$)")
CV_RE = re.compile(r"\b(const|constexpr|volatile|mutable|static|inline)\b")
SIG_NAME_RE = re.compile(r"([\w:~]+)\s*$")


def match_decl(s):
    """DECL_RE with cv/storage qualifiers stripped (handles `Env* const x;`
    as well as `const Env* x;`)."""
    return DECL_RE.match(CV_RE.sub(" ", s).strip())


class _Lock:
    __slots__ = ("name", "scope_idx", "suspended")

    def __init__(self, name, scope_idx):
        self.name = name          # qualified registered lock name
        self.scope_idx = scope_idx  # scope stack index owning the acquire
        self.suspended = None     # scope idx where a deeper Unlock happened


class _FileScanner:
    """Character-level scanner: scope stack + per-function lock tracking."""

    def __init__(self, an, rel, code, annotated_lines, comment_only):
        self.an = an
        self.rel = rel
        self.code = code
        self.annotated_lines = annotated_lines
        self.comment_only = comment_only
        self.scopes = [Scope("global")]
        self.ns = []              # inner namespaces beyond lsmlab
        self.func = None          # current Function (innermost)
        self.locks = []           # list of _Lock, in acquisition order
        self.pending = ""
        self.pending_line = 1

    # class key from current scope stack (inner namespaces + class names)
    def class_key(self):
        names = [s.name for s in self.scopes if s.kind == "class" and s.name]
        if not names:
            return None
        return "::".join(self.ns + names)

    def run(self):
        line = 1
        paren = 0
        i = 0
        code = self.code
        n = len(code)
        while i < n:
            c = code[i]
            if c == "\n":
                line += 1
                i += 1
                continue
            if self.scopes[-1].kind == "lambda":
                if c == "{":
                    self.scopes.append(Scope("lambda"))
                elif c == "}":
                    self.scopes.pop()
                i += 1
                continue
            if c == "(":
                paren += 1
            elif c == ")":
                paren = max(0, paren - 1)
            elif c == "{":
                self.open_brace(line, paren)
                i += 1
                continue
            elif c == "}":
                self.close_brace()
                i += 1
                continue
            elif c == ";" and paren == 0:
                self.statement(self.pending, self.pending_line)
                self.reset_pending(line)
                i += 1
                continue
            if not self.pending.strip():
                self.pending_line = line
            self.pending += c
            i += 1

    def reset_pending(self, line):
        self.pending = ""
        self.pending_line = line

    LAMBDA_TAIL_RE = re.compile(
        r"\[[^\[\]]*\]\s*(\([^()]*\))?\s*(mutable\b\s*)?(noexcept\b\s*)?"
        r"(->\s*[\w:<>,&*\s]+)?$")
    BLOCK_HEAD_RE = re.compile(r"^\s*(if|for|while|switch|do|else|try|catch)\b")
    CLASS_RE = re.compile(
        r"\b(?:class|struct)\s+([A-Za-z_][\w:]*)\s*(?:final\s*)?(?::[^{]*)?$")
    NS_RE = re.compile(r"\bnamespace\s+([A-Za-z_]\w*)?\s*$")

    def strip_attrs(self, text):
        out = text
        for mac in ATTR_MACROS:
            out = re.sub(r"\b" + mac + r"\s*\([^()]*\)", " ", out)
        return out

    def open_brace(self, line, paren):
        pending = self.pending.strip()
        if self.LAMBDA_TAIL_RE.search(pending):
            self.scopes.append(Scope("lambda"))
            return
        if paren > 0:
            self.scopes.append(Scope("inline"))
            return
        m = self.NS_RE.search(pending)
        if m:
            name = m.group(1) or ""
            if name and name != "lsmlab":
                self.ns.append(name)
                self.scopes.append(Scope("namespace", name))
            else:
                self.scopes.append(Scope("namespace", ""))
            self.reset_pending(line)
            return
        m = self.CLASS_RE.search(pending)
        if m and "enum" not in pending:
            self.scopes.append(Scope("class", m.group(1)))
            self.reset_pending(line)
            return
        in_function = self.func is not None
        stripped = self.strip_attrs(pending).strip()
        if not in_function:
            # function definition?  needs '(' ... ')' tail (after attrs).
            if ("(" in stripped and
                    re.search(r"\)\s*(const\s*)?(noexcept\s*)?(override\s*)?"
                              r"(final\s*)?(:[^;{]*)?$", stripped) and
                    "enum" not in stripped and "=" not in
                    re.sub(r":[^;{]*$", "", stripped)):
                self.begin_function(pending, line)
                self.reset_pending(line)
                return
            self.scopes.append(Scope("inline"))
            return
        # Inside a function: block vs brace-init.
        if self.BLOCK_HEAD_RE.match(pending) or not pending:
            self.statement(self.pending, self.pending_line)  # block header
            self.scopes.append(Scope("block"))
            self.reset_pending(line)
            return
        if stripped.endswith(")"):
            self.statement(self.pending, self.pending_line)
            self.scopes.append(Scope("block"))
            self.reset_pending(line)
            return
        self.scopes.append(Scope("inline"))

    def begin_function(self, pending, line):
        head = re.sub(r":\s*[^;{]*$", "", pending) \
            if re.search(r"\)\s*:\s*\w", pending) else pending
        lp = head.find("(")
        name_m = SIG_NAME_RE.search(head[:lp]) if lp > 0 else None
        cls = self.class_key()
        if name_m is None:
            key = f"<anon@{self.rel}:{line}>"
            name = key
        else:
            name = name_m.group(1)
            if "::" in name and cls is None:
                # Out-of-class definition: Class::Method
                cls = "::".join((self.ns + name.split("::")[:-1]))
                key = "::".join(self.ns + name.split("::"))
                name = name.split("::")[-1]
            elif cls is not None:
                key = f"{cls}::{name}"
            else:
                key = "::".join(self.ns + [name])
        req_exprs = re.findall(r"\bREQUIRES\s*\(([^()]*)\)", pending)
        req_exprs = [e.strip() for grp in req_exprs for e in grp.split(",")]
        if not req_exprs and cls is not None:
            req_exprs = self.an.decl_requires.get((cls, name), [])
        f = Function(key, self.rel, line, cls, [])
        # Parameters -> local types.
        if lp > 0:
            params = head[lp + 1:head.rfind(")")]
            for p in params.split(","):
                dm = match_decl(p.strip() + ";")
                if dm:
                    f.locals[dm.group(2)] = strip_type(dm.group(1))
        for e in req_exprs:
            q = self.an.qualify_lock(e, f, cls)
            if q is not None:
                f.requires.append(q)
        self.an.functions[key] = f
        self.func = f
        self.scopes.append(Scope("function", name))
        self.locks = [
            _Lock(q, len(self.scopes) - 1) for q in f.requires]

    def close_brace(self):
        if len(self.scopes) <= 1:
            return
        scope = self.scopes.pop()
        idx = len(self.scopes)  # index the popped scope had
        if scope.kind in ("namespace",) and scope.name:
            if self.ns and self.ns[-1] == scope.name:
                self.ns.pop()
        if self.func is not None:
            # Release MutexLocks acquired in this scope; restore suspended
            # manual locks whose deeper Unlock scope just closed (the unlock
            # sat on an early-exit path or was re-Locked before the close).
            self.locks = [lk for lk in self.locks
                          if not (lk.scope_idx == idx and lk.suspended is None
                                  and lk.name in scope.acquired)]
            for lk in self.locks:
                if lk.suspended is not None and lk.suspended >= idx:
                    lk.suspended = None
        if scope.kind == "function":
            self.func = None
            self.locks = []
        self.reset_pending(self.pending_line)

    # -- statement analysis ------------------------------------------------
    def held_locks(self):
        held = set()
        for lk in self.locks:
            if lk.suspended is not None:
                continue
            info = self.an.rank_names.get(lk.name)
            if info is not None and not info[1]:  # no-io only
                held.add(lk.name)
        return frozenset(held)

    def statement(self, stmt, line):
        if self.func is None:
            self.class_member_decl(stmt, line)
            return
        f = self.func
        cls = f.cls
        # Local declarations feed receiver-type resolution.
        dm = match_decl(stmt.strip())
        if dm and dm.group(1) not in ("return", "delete", "new"):
            f.locals.setdefault(dm.group(2), strip_type(dm.group(1)))
        # Lock events first: a MutexLock on this statement guards later text.
        ml = MUTEXLOCK_RE.search(stmt)
        if ml:
            q = self.an.qualify_lock(ml.group(1), f, cls)
            if q is not None:
                idx = len(self.scopes) - 1
                self.locks.append(_Lock(q, idx))
                self.scopes[-1].acquired.append(q)
        for m in LOCK_CALL_RE.finditer(stmt):
            expr, op = m.group(1), m.group(2)
            q = self.an.qualify_lock(expr, f, cls)
            if q is None:
                continue
            if op == "Lock":
                existing = [lk for lk in self.locks if lk.name == q]
                resumed = False
                for lk in existing:
                    if lk.suspended is not None:
                        lk.suspended = None
                        resumed = True
                        break
                if not resumed:
                    self.locks.append(_Lock(q, len(self.scopes) - 1))
            else:  # Unlock
                for lk in reversed(self.locks):
                    if lk.name == q and lk.suspended is None:
                        here = len(self.scopes) - 1
                        if here > lk.scope_idx:
                            lk.suspended = here  # maybe early-exit path
                        else:
                            self.locks.remove(lk)
                        break
        self.extract_calls(stmt, line)

    def class_member_decl(self, stmt, line):
        cls = self.class_key()
        if cls is None:
            return
        s = stmt.strip()
        # REQUIRES on method declarations.
        if "(" in s and "REQUIRES" in s:
            lp = s.find("(")
            nm = SIG_NAME_RE.search(s[:lp])
            reqs = re.findall(r"\bREQUIRES\s*\(([^()]*)\)", s)
            reqs = [e.strip() for grp in reqs for e in grp.split(",")]
            if nm and reqs:
                self.an.decl_requires[(cls, nm.group(1).split("::")[-1])] = \
                    reqs
        # Mutex members (ranked or not).
        mm = re.match(
            r"^(?:mutable\s+)?Mutex\s+(\w+)\s*"
            r"(?:ACQUIRED_AFTER\([^()]*\)\s*)?"
            r"(?:\{\s*LockRank::(\w+)\s*\})?$", self.strip_guarded(s))
        if mm:
            self.an.mutex_members.append(
                (cls, mm.group(1), mm.group(2), self.rel, line))
        # Plain member declarations feed the type maps.
        dm = match_decl(self.strip_attrs(s))
        if dm and "(" not in s.split(dm.group(2))[0]:
            self.an.class_members.setdefault(cls, {})[dm.group(2)] = \
                strip_type(dm.group(1))

    @staticmethod
    def strip_guarded(s):
        s = re.sub(r"\bGUARDED_BY\s*\([^()]*\)", " ", s)
        s = re.sub(r"=\s*[^;{]*$", "", s)
        return " ".join(s.split())

    def is_annotated(self, line):
        if line in self.annotated_lines:
            return True
        ln = line - 1
        while ln > 0 and ln in self.comment_only:
            if ln in self.annotated_lines:
                return True
            ln -= 1
        return False

    def extract_calls(self, stmt, line):
        f = self.func
        cls = f.cls
        stmt = re.sub(r"\.get\(\)\s*->", "->", stmt)
        stmt = re.sub(r"\.get\(\)\s*\.", ".", stmt)
        held = self.held_locks()
        annotated = self.is_annotated(line)
        for m in CALL_RE.finditer(stmt):
            expr = re.sub(r"\s+", "", m.group(1))
            parts = re.split(r"\.|->", expr)
            method = parts[-1].split("::")[-1]
            if method in KEYWORDS or method.startswith("~"):
                continue
            if method in ("Lock", "Unlock", "TryLock", "Wait", "TimedWait",
                          "MutexLock", "ScopedBlockingIoAllowed"):
                continue
            leaf = None
            targets = []
            if method in ("sleep_for", "sleep_until"):
                leaf = "sleep"
            elif method in RAW_BLOCKING and expr in (
                    method, "::" + method, "std::" + method):
                leaf = "raw"
            elif len(parts) > 1 and "::" not in parts[-1]:
                recv = self.an.resolve_chain(parts[:-1], f, cls)
                if recv in FILE_TYPES and method in FILE_BLOCKING:
                    leaf = "file"
                elif recv == "Env" and method in ENV_BLOCKING:
                    leaf = "env"
                elif recv is not None:
                    targets = [f"{recv}::{method}"]
            elif "::" in expr:
                targets = [expr[2:] if expr.startswith("::") else expr]
            elif cls is not None:
                targets = [f"{cls}::{method}", method]
            else:
                targets = [method]
            site = Site(self.rel, line, f, expr, method, held, annotated,
                        leaf, targets)
            if annotated:
                self.an.annotated_sites.append(site)
            if leaf is not None or targets:
                f.sites.append(site)
            elif held and self.an.verbose:
                self.an.unresolved.append((self.rel, line, expr))


# ---------------------------------------------------------------- driver --
def collect_files(root):
    files = set()
    cc = os.path.join(root, "build", "compile_commands.json")
    if os.path.exists(cc):
        try:
            for entry in json.load(open(cc)):
                f = entry.get("file", "")
                if f.endswith((".cc", ".h")) and os.path.exists(f):
                    if os.path.realpath(f).startswith(
                            os.path.realpath(os.path.join(root, "src"))):
                        files.add(os.path.realpath(f))
        except (ValueError, OSError):
            pass
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for nm in names:
            if nm.endswith((".h", ".cc")):
                files.add(os.path.realpath(os.path.join(dirpath, nm)))
    # Headers first so declarations (REQUIRES, members) precede definitions.
    return sorted(files, key=lambda p: (not p.endswith(".h"), p))


def load_audit_list(path, errors):
    entries = []
    if not os.path.exists(path):
        errors.append(f"missing audit list: {path}")
        return entries
    with open(path) as f:
        for ln, raw in enumerate(f, 1):
            s = raw.rstrip("\n")
            if not s.strip() or s.lstrip().startswith("#"):
                continue
            parts = s.split("\t")
            if len(parts) != 4:
                errors.append(f"{path}:{ln}: expected 4 tab-separated "
                              f"fields (file, function, callee, reason)")
                continue
            entries.append((ln, parts[0], parts[1], parts[2], parts[3]))
    return entries


def run_analysis(root, verbose=False):
    an = Analyzer(root, verbose=verbose)
    an.check_rank_tables(os.path.join(root, "tools", "lock_ranks.tsv"),
                         os.path.join(root, "src", "util", "lock_rank.h"))
    files = collect_files(root)
    # Two passes: the first builds type maps / REQUIRES declarations /
    # mutex-member facts, the second resolves receivers and lock names with
    # the complete maps. Cheap (the tree is small) and order-independent.
    for phase in (1, 2):
        if phase == 2:
            an.functions = {}
            an.annotated_sites = []
            an.mutex_members = []
            an.unresolved = []
        for path in files:
            an.scan_file(path)
    an.check_mutex_members()
    an.compute_io_reach()
    return an


def relevant_annotated(an):
    """Annotated call sites that actually name a blocking operation (the
    annotation line may contain incidental helper calls too)."""
    out = []
    for site in an.annotated_sites:
        reaches = site.leaf is not None or any(
            (g := an.lookup(t)) is not None and g.io_reach is not None
            for t in site.targets)
        if reaches:
            out.append(site)
    return out


def check_audit_list(an, root):
    path = os.path.join(root, "tools", "lock_io_audit.list")
    entries = load_audit_list(path, an.errors)
    sites = relevant_annotated(an)
    used = set()
    warnings = []
    seen = set()
    for site in sites:
        sig = (site.file, site.func.key, site.callee)
        if not site.locks:
            if sig not in seen:
                warnings.append(
                    f"{site.file}:{site.line}: {ANNOTATION} annotation on "
                    f"{site.callee!r} but no no-io mutex is held there")
            seen.add(sig)
            continue
        seen.add(sig)
        hit = None
        for e in entries:
            if (e[1], e[2], e[3]) == sig:
                hit = e
                break
        if hit is None:
            an.errors.append(
                f"{site.file}:{site.line}: audited site "
                f"[{site.func.key}] {site.callee!r} is missing from "
                f"tools/lock_io_audit.list")
        else:
            used.add(hit[0])
    for e in entries:
        if e[0] not in used:
            an.errors.append(
                f"{path}:{e[0]}: stale audit entry ({e[1]}, {e[2]}, "
                f"{e[3]!r}) matches no annotated blocking site in src/")
    return warnings


def report(an, violations, warnings, verbose):
    for w in warnings:
        print(f"warning: {w}")
    for e in an.errors:
        print(f"error: {e}")
    for site in sorted(violations, key=lambda s: (s.file, s.line)):
        locks = ", ".join(sorted(site.locks))
        print(f"VIOLATION {site.file}:{site.line} in [{site.func.key}] "
              f"holding {{{locks}}}: {site.callee}(...)")
        for step in an.witness_chain(site)[1:]:
            print(f"    -> {step.file}:{step.line} [{step.func.key}] "
                  f"{step.callee}(...)")
        last = an.witness_chain(site)[-1]
        if last.leaf:
            print(f"    => blocking leaf [{last.leaf}] {last.callee}")
    if verbose and an.unresolved:
        print(f"note: {len(an.unresolved)} unresolved calls under locks "
              f"(textual frontend limit):")
        for file, line, expr in an.unresolved[:40]:
            print(f"  unresolved {file}:{line}: {expr}")
    if not violations and not an.errors:
        print(f"check_lock_io: OK — {len(an.functions)} functions, "
              f"{len(relevant_annotated(an))} audited blocking sites, "
              f"0 unaudited lock->I/O paths")


# -------------------------------------------------------------- self-test --
SELF_TEST_RANK_H = """\
#pragma once
#define LSMLAB_LOCK_RANKS(X) \\
  X(kWidgetMu, 10, "Widget::mu_", false) \\
  X(kLoggerMu, 20, "Logger::mu_", true)
"""

SELF_TEST_TSV = """\
10\tWidget::mu_\tno-io
20\tLogger::mu_\tio-ok
"""

SELF_TEST_H = """\
#pragma once
namespace lsmlab {
class Status;
class Slice;
class WritableFile {
 public:
  Status Append(const Slice& s);
  Status Sync();
};
class Widget {
 public:
  void Direct();
  void Indirect();
  void Required() REQUIRES(mu_);
  void Audited();
  void Scoped();
  void Span();
 private:
  void Helper();
  Mutex mu_{LockRank::kWidgetMu};
  Mutex logger_mu_{LockRank::kLoggerMu};
  std::unique_ptr<WritableFile> file_;
};
}  // namespace lsmlab
"""

SELF_TEST_CC = """\
#include "widget.h"
namespace lsmlab {

void Widget::Helper() {
  file_->Append(Slice("x")).IgnoreError();
}

void Widget::Direct() {
  MutexLock l(&mu_);
  file_->Sync().IgnoreError();  // seeded violation: direct leaf under mu_
}

void Widget::Indirect() {
  MutexLock l(&mu_);
  Helper();  // seeded violation: leaf one call away
}

void Widget::Required() {
  file_->Sync().IgnoreError();  // seeded violation: REQUIRES(mu_) entry lock
}

void Widget::Audited() {
  MutexLock l(&mu_);
  // io-under-lock-ok: exercised by the self-test; listed in the audit file.
  file_->Sync().IgnoreError();
}

void Widget::Scoped() {
  {
    MutexLock l(&mu_);
  }
  file_->Sync().IgnoreError();  // clean: lock scope already closed
}

void Widget::Span() {
  mu_.Lock();
  mu_.Unlock();
  file_->Sync().IgnoreError();  // clean: explicit span already released
  MutexLock g(&logger_mu_);
  file_->Append(Slice("y")).IgnoreError();  // clean: io-ok rank
}

}  // namespace lsmlab
"""

SELF_TEST_AUDIT = (
    "# file\tfunction\tcallee\treason\n"
    "src/widget.cc\tWidget::Audited\tfile_->Sync\tself-test exception\n"
    "src/widget.cc\tWidget::Bogus\tfile_->Sync\tstale entry, must error\n"
)


def self_test(verbose):
    with tempfile.TemporaryDirectory(prefix="check_lock_io_") as tmp:
        os.makedirs(os.path.join(tmp, "src", "util"))
        os.makedirs(os.path.join(tmp, "tools"))
        paths = {
            "src/util/lock_rank.h": SELF_TEST_RANK_H,
            "tools/lock_ranks.tsv": SELF_TEST_TSV,
            "src/widget.h": SELF_TEST_H,
            "src/widget.cc": SELF_TEST_CC,
            "tools/lock_io_audit.list": SELF_TEST_AUDIT,
        }
        for rel, content in paths.items():
            with open(os.path.join(tmp, rel), "w") as f:
                f.write(content)
        an = run_analysis(tmp, verbose=verbose)
        warnings = check_audit_list(an, tmp)
        violations = an.find_violations()
        flagged = {v.func.key for v in violations}
        failures = []
        for expect in ("Widget::Direct", "Widget::Indirect",
                       "Widget::Required"):
            if expect not in flagged:
                failures.append(f"seeded violation in {expect} NOT flagged")
        for clean in ("Widget::Scoped", "Widget::Span", "Widget::Audited"):
            if clean in flagged:
                failures.append(f"clean function {clean} falsely flagged")
        if not any("stale audit entry" in e for e in an.errors):
            failures.append("stale audit entry (Widget::Bogus) not reported")
        if any("Widget::Audited" in e for e in an.errors):
            failures.append("listed+annotated site wrongly reported")
        if verbose:
            report(an, violations, warnings, verbose)
        if failures:
            print("check_lock_io --self-test: FAIL")
            for f in failures:
                print(f"  {f}")
            return 1
        print("check_lock_io --self-test: PASS "
              f"({len(flagged)} seeded violations flagged, "
              "clean/audited/scoped sites quiet, stale entry rejected)")
        return 0


def main():
    ap = argparse.ArgumentParser(
        description="no-blocking-I/O-under-engine-lock analyzer")
    ap.add_argument("--root",
                    default=os.path.dirname(os.path.dirname(
                        os.path.abspath(__file__))),
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--frontend", choices=("auto", "text", "clang"),
                    default="auto",
                    help="parser frontend; 'clang' needs python libclang "
                         "and degrades to 'text' when unavailable")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded seeded-violation self-test")
    ap.add_argument("--dump-annotated", action="store_true",
                    help="list every audited blocking site and exit")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    if args.frontend == "clang":
        try:
            import clang.cindex  # noqa: F401
            print("note: libclang frontend not yet wired; the textual "
                  "frontend is authoritative for this tree")
        except ImportError:
            print("note: python libclang unavailable; using the textual "
                  "frontend")

    if args.self_test:
        sys.exit(self_test(args.verbose))

    an = run_analysis(args.root, verbose=args.verbose)
    warnings = check_audit_list(an, args.root)
    violations = an.find_violations()
    if args.dump_annotated:
        for site in relevant_annotated(an):
            locks = ",".join(sorted(site.locks)) or "-"
            print(f"{site.file}:{site.line}\t{site.func.key}\t"
                  f"{site.callee}\t{locks}")
        sys.exit(0)
    report(an, violations, warnings, args.verbose)
    sys.exit(1 if violations or an.errors else 0)


if __name__ == "__main__":
    main()
