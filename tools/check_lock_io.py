#!/usr/bin/env python3
"""Interprocedural lock / blocking-I/O analyzer (static half of the invariant
whose runtime half lives in src/util/mutex.h + src/storage/io_stats.h).

Invariant: no blocking I/O (Env / file-handle calls, raw posix I/O, sleeps)
may execute while a ranked *no-io* engine mutex is held, except at sites
explicitly audited with an `io-under-lock-ok:` comment AND listed in
tools/lock_io_audit.list.

A second leaf class covers the parallel group apply (PR 10): the
concurrent memtable insert entry points (SkipList::InsertConcurrently,
MemTable::AddConcurrent, WriteBatch::InsertIntoConcurrent) run outside
mu_ by design — the whole point is that group members insert in parallel
without serializing on the DB mutex — so calling one while a no-io
engine mutex is held is flagged exactly like blocking I/O. The serial
siblings (Insert/Add/InsertInto) are legitimately called under mu_ and
are not in the set.

The tool:
  1. scans every .h/.cc under src/ (file list from compile_commands.json when
     present, e.g. build/compile_commands.json exported by the default cmake
     configure; falls back to walking src/),
  2. builds a call graph of project functions with per-site lock context
     (MutexLock scopes, raw Lock()/Unlock() spans, REQUIRES(...) entry locks),
  3. propagates "performs blocking I/O" through the graph (io_reach fixpoint),
  4. reports every path from a locked region to a blocking leaf with the full
     call chain, minus audited exceptions,
  5. cross-checks the audit list both ways (stale entries and unlisted
     annotations are errors) and the lock-rank tables
     (tools/lock_ranks.tsv vs the X-macro in src/util/lock_rank.h vs the
     actual `Mutex member{LockRank::k...}` declarations).

The C++ parsing itself (scope-stack scanner, call-graph builder, receiver
resolution) lives in the shared frontend tools/cpp_frontend.py, which
tools/check_resource_flow.py builds on too; this file adds only the
lock/blocking-I/O semantics.

Frontends: `--frontend text` (default; pure stdlib, always available) or
`clang` (libclang refinement; this container ships no python libclang, so
`auto` degrades to text with a note). `--self-test` runs the analyzer over an
embedded tree with seeded violations and asserts they are flagged.

Exit status: 0 clean, 1 violations or consistency errors.
"""

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_frontend  # noqa: E402
from cpp_frontend import Frontend, collect_files, load_audit_list  # noqa: E402

ANNOTATION = "io-under-lock-ok"

# Blocking leaves, by receiver interface (types from src/storage/env.h).
FILE_TYPES = {"WritableFile", "RandomAccessFile", "SequentialFile"}
FILE_BLOCKING = {"Read", "Append", "Sync", "Flush", "Skip", "Close"}
ENV_BLOCKING = {
    "NewWritableFile", "NewRandomAccessFile", "NewSequentialFile",
    "GetChildren", "RemoveFile", "RenameFile", "GetFileSize", "FileExists",
    "CreateDir", "RemoveDir",
}
# Raw libc/posix calls (matched only receiver-less or ::-qualified).
RAW_BLOCKING = {
    "fsync", "fdatasync", "open", "pread", "pwrite", "fwrite", "fread",
    "fflush", "fopen", "fclose", "stat", "unlink", "mkdir",
    "sleep_for", "sleep_until",
}
# Parallel-apply entry points: must run with no no-io engine mutex held
# (the member-parallel insert region of src/core/db_write.cc). Matched by
# method name alone — the names are unique to the concurrent memtable
# path, and their serial siblings (Insert/Add/InsertInto) stay callable
# under mu_.
APPLY_BLOCKING = {
    "InsertConcurrently", "AddConcurrent", "InsertIntoConcurrent",
}


class Analyzer(Frontend):
    """Lock/blocking-I/O semantics on top of the shared frontend."""

    def __init__(self, root, verbose=False):
        super().__init__(root, annotations=(ANNOTATION,), verbose=verbose)
        self.enum_to_name = {}

    # -- rank tables ------------------------------------------------------
    def load_rank_tsv(self, path):
        if not os.path.exists(path):
            self.errors.append(f"missing rank table: {path}")
            return {}
        table = {}
        with open(path) as f:
            for ln, raw in enumerate(f, 1):
                s = raw.strip()
                if not s or s.startswith("#"):
                    continue
                parts = s.split("\t")
                if len(parts) != 3 or parts[2] not in ("io-ok", "no-io"):
                    self.errors.append(f"{path}:{ln}: malformed row: {s!r}")
                    continue
                table[parts[1]] = (int(parts[0]), parts[2] == "io-ok")
        return table

    def load_rank_header(self, path):
        """Parse X(kName, rank, "Lock::name", io_ok) rows from the X-macro."""
        if not os.path.exists(path):
            self.errors.append(f"missing rank header: {path}")
            return {}
        with open(path) as f:
            text = f.read()
        rows = {}
        for m in re.finditer(
                r'X\(\s*(k\w+)\s*,\s*(\d+)\s*,\s*"([^"]+)"\s*,\s*'
                r'(true|false)\s*\)', text):
            rows[m.group(1)] = (int(m.group(2)), m.group(3),
                                m.group(4) == "true")
        return rows

    def check_rank_tables(self, tsv_path, header_path):
        tsv = self.load_rank_tsv(tsv_path)
        hdr = self.load_rank_header(header_path)
        self.rank_names = dict(tsv)
        self.enum_to_name = {e: name for e, (_, name, _) in hdr.items()}
        hdr_by_name = {name: (rank, io) for (rank, name, io) in hdr.values()}
        for name, (rank, io_ok) in tsv.items():
            if name not in hdr_by_name:
                self.errors.append(
                    f"{tsv_path}: lock {name!r} has no X-macro row in "
                    f"{header_path}")
            elif hdr_by_name[name] != (rank, io_ok):
                self.errors.append(
                    f"rank table mismatch for {name!r}: tsv says "
                    f"{(rank, io_ok)}, header says {hdr_by_name[name]}")
        for name in hdr_by_name:
            if name not in tsv:
                self.errors.append(
                    f"{header_path}: lock {name!r} missing from {tsv_path}")

    def check_mutex_members(self):
        """Every Mutex member in src/ must be ranked, and its rank's name
        must equal the qualified declaration (tsv is the single source)."""
        for cls, member, enum, file, line in self.mutex_members:
            qual = f"{cls}::{member}" if cls else member
            if enum is None:
                self.errors.append(
                    f"{file}:{line}: unranked engine mutex member {qual!r}; "
                    f"add a LockRank (see tools/lock_ranks.tsv)")
                continue
            name = self.enum_to_name.get(enum)
            if name is None:
                self.errors.append(
                    f"{file}:{line}: {qual!r} uses unknown LockRank::{enum}")
            elif name != qual:
                self.errors.append(
                    f"{file}:{line}: {qual!r} declared with LockRank::{enum} "
                    f"whose registered name is {name!r}")

    # -- call classification ----------------------------------------------
    def classify_call(self, scanner, func, cls, expr, parts, method):
        if method in APPLY_BLOCKING:
            return "memtable-apply", []
        if method in ("sleep_for", "sleep_until"):
            return "sleep", []
        if method in RAW_BLOCKING and expr in (
                method, "::" + method, "std::" + method):
            return "raw", []
        if len(parts) > 1 and "::" not in parts[-1]:
            recv = self.resolve_chain(parts[:-1], func, cls)
            if recv in FILE_TYPES and method in FILE_BLOCKING:
                return "file", []
            if recv == "Env" and method in ENV_BLOCKING:
                return "env", []
            if recv is not None:
                return None, [f"{recv}::{method}"]
            return None, []
        if "::" in expr:
            return None, [expr[2:] if expr.startswith("::") else expr]
        if cls is not None:
            return None, [f"{cls}::{method}", method]
        return None, [method]

    # -- fixpoint + reporting ---------------------------------------------
    def requires_noio(self, f):
        return [q for q in f.requires
                if q in self.rank_names and not self.rank_names[q][1]]

    def site_counts_for_reach(self, f, site):
        if site.annotated:
            return False
        if self.requires_noio(f) and not site.locks:
            # Entry lock(s) released at this point: the caller's lock is the
            # same lock, so the call does not block under any mutex.
            return False
        return True

    def compute_io_reach(self):
        changed = True
        while changed:
            changed = False
            for f in self.functions.values():
                if f.io_reach is not None:
                    continue
                for site in f.sites:
                    if not self.site_counts_for_reach(f, site):
                        continue
                    if site.leaf:
                        f.io_reach = site
                        changed = True
                        break
                    for t in site.targets:
                        g = self.lookup(t)
                        if g is not None and g.io_reach is not None:
                            f.io_reach = site
                            changed = True
                            break
                    if f.io_reach is not None:
                        break

    def witness_chain(self, site, limit=12):
        chain = [site]
        while chain[-1].leaf is None and len(chain) < limit:
            nxt = None
            for t in chain[-1].targets:
                g = self.lookup(t)
                if g is not None and g.io_reach is not None:
                    nxt = g.io_reach
                    break
            if nxt is None:
                break
            chain.append(nxt)
        return chain

    def find_violations(self):
        violations = []
        for f in self.functions.values():
            for site in f.sites:
                if not site.locks or site.annotated:
                    continue
                reaches = site.leaf is not None or any(
                    (g := self.lookup(t)) is not None
                    and g.io_reach is not None
                    for t in site.targets)
                if reaches:
                    violations.append(site)
        return violations


def run_analysis(root, verbose=False):
    an = Analyzer(root, verbose=verbose)
    an.check_rank_tables(os.path.join(root, "tools", "lock_ranks.tsv"),
                         os.path.join(root, "src", "util", "lock_rank.h"))
    an.run(collect_files(root))
    an.check_mutex_members()
    an.compute_io_reach()
    return an


def relevant_annotated(an):
    """Annotated call sites that actually name a blocking operation (the
    annotation line may contain incidental helper calls too)."""
    out = []
    for site in an.annotated_sites:
        reaches = site.leaf is not None or any(
            (g := an.lookup(t)) is not None and g.io_reach is not None
            for t in site.targets)
        if reaches:
            out.append(site)
    return out


def check_audit_list(an, root):
    path = os.path.join(root, "tools", "lock_io_audit.list")
    entries = load_audit_list(path, an.errors)
    sites = relevant_annotated(an)
    used = set()
    warnings = []
    seen = set()
    for site in sites:
        sig = (site.file, site.func.key, site.callee)
        if not site.locks:
            if sig not in seen:
                warnings.append(
                    f"{site.file}:{site.line}: {ANNOTATION} annotation on "
                    f"{site.callee!r} but no no-io mutex is held there")
            seen.add(sig)
            continue
        seen.add(sig)
        hit = None
        for e in entries:
            if (e[1], e[2], e[3]) == sig:
                hit = e
                break
        if hit is None:
            an.errors.append(
                f"{site.file}:{site.line}: audited site "
                f"[{site.func.key}] {site.callee!r} is missing from "
                f"tools/lock_io_audit.list")
        else:
            used.add(hit[0])
    for e in entries:
        if e[0] not in used:
            an.errors.append(
                f"{path}:{e[0]}: stale audit entry ({e[1]}, {e[2]}, "
                f"{e[3]!r}) matches no annotated blocking site in src/")
    return warnings


def report(an, violations, warnings, verbose):
    for w in warnings:
        print(f"warning: {w}")
    for e in an.errors:
        print(f"error: {e}")
    for site in sorted(violations, key=lambda s: (s.file, s.line)):
        locks = ", ".join(sorted(site.locks))
        print(f"VIOLATION {site.file}:{site.line} in [{site.func.key}] "
              f"holding {{{locks}}}: {site.callee}(...)")
        for step in an.witness_chain(site)[1:]:
            print(f"    -> {step.file}:{step.line} [{step.func.key}] "
                  f"{step.callee}(...)")
        last = an.witness_chain(site)[-1]
        if last.leaf:
            print(f"    => blocking leaf [{last.leaf}] {last.callee}")
    if verbose and an.unresolved:
        print(f"note: {len(an.unresolved)} unresolved calls under locks "
              f"(textual frontend limit):")
        for file, line, expr in an.unresolved[:40]:
            print(f"  unresolved {file}:{line}: {expr}")
    if not violations and not an.errors:
        print(f"check_lock_io: OK — {len(an.functions)} functions, "
              f"{len(relevant_annotated(an))} audited blocking sites, "
              f"0 unaudited lock->I/O paths")


# -------------------------------------------------------------- self-test --
SELF_TEST_RANK_H = """\
#pragma once
#define LSMLAB_LOCK_RANKS(X) \\
  X(kWidgetMu, 10, "Widget::mu_", false) \\
  X(kLoggerMu, 20, "Logger::mu_", true)
"""

SELF_TEST_TSV = """\
10\tWidget::mu_\tno-io
20\tLogger::mu_\tio-ok
"""

SELF_TEST_H = """\
#pragma once
namespace lsmlab {
class Status;
class Slice;
class WritableFile {
 public:
  Status Append(const Slice& s);
  Status Sync();
};
class MemTable {
 public:
  uint64_t AddConcurrent(int seq);
  void Add(int seq);
};
class Widget {
 public:
  void Direct();
  void Indirect();
  void Required() REQUIRES(mu_);
  void Audited();
  void Scoped();
  void Span();
  void ApplyLocked();
  void ApplyUnlocked();
 private:
  void Helper();
  Mutex mu_{LockRank::kWidgetMu};
  Mutex logger_mu_{LockRank::kLoggerMu};
  std::unique_ptr<WritableFile> file_;
  MemTable* mem_;
};
}  // namespace lsmlab
"""

SELF_TEST_CC = """\
#include "widget.h"
namespace lsmlab {

void Widget::Helper() {
  file_->Append(Slice("x")).IgnoreError();
}

void Widget::Direct() {
  MutexLock l(&mu_);
  file_->Sync().IgnoreError();  // seeded violation: direct leaf under mu_
}

void Widget::Indirect() {
  MutexLock l(&mu_);
  Helper();  // seeded violation: leaf one call away
}

void Widget::Required() {
  file_->Sync().IgnoreError();  // seeded violation: REQUIRES(mu_) entry lock
}

void Widget::Audited() {
  MutexLock l(&mu_);
  // io-under-lock-ok: exercised by the self-test; listed in the audit file.
  file_->Sync().IgnoreError();
}

void Widget::Scoped() {
  {
    MutexLock l(&mu_);
  }
  file_->Sync().IgnoreError();  // clean: lock scope already closed
}

void Widget::Span() {
  mu_.Lock();
  mu_.Unlock();
  file_->Sync().IgnoreError();  // clean: explicit span already released
  MutexLock g(&logger_mu_);
  file_->Append(Slice("y")).IgnoreError();  // clean: io-ok rank
}

void Widget::ApplyLocked() {
  MutexLock l(&mu_);
  mem_->AddConcurrent(1);  // seeded violation: parallel apply under mu_
}

void Widget::ApplyUnlocked() {
  mu_.Lock();
  mem_->Add(1);  // clean: the serial sibling is fine under mu_
  mu_.Unlock();
  mem_->AddConcurrent(1);  // clean: no lock held
}

}  // namespace lsmlab
"""

SELF_TEST_AUDIT = (
    "# file\tfunction\tcallee\treason\n"
    "src/widget.cc\tWidget::Audited\tfile_->Sync\tself-test exception\n"
    "src/widget.cc\tWidget::Bogus\tfile_->Sync\tstale entry, must error\n"
)


def self_test(verbose):
    with tempfile.TemporaryDirectory(prefix="check_lock_io_") as tmp:
        os.makedirs(os.path.join(tmp, "src", "util"))
        os.makedirs(os.path.join(tmp, "tools"))
        paths = {
            "src/util/lock_rank.h": SELF_TEST_RANK_H,
            "tools/lock_ranks.tsv": SELF_TEST_TSV,
            "src/widget.h": SELF_TEST_H,
            "src/widget.cc": SELF_TEST_CC,
            "tools/lock_io_audit.list": SELF_TEST_AUDIT,
        }
        for rel, content in paths.items():
            with open(os.path.join(tmp, rel), "w") as f:
                f.write(content)
        an = run_analysis(tmp, verbose=verbose)
        warnings = check_audit_list(an, tmp)
        violations = an.find_violations()
        flagged = {v.func.key for v in violations}
        failures = []
        for expect in ("Widget::Direct", "Widget::Indirect",
                       "Widget::Required", "Widget::ApplyLocked"):
            if expect not in flagged:
                failures.append(f"seeded violation in {expect} NOT flagged")
        for clean in ("Widget::Scoped", "Widget::Span", "Widget::Audited",
                      "Widget::ApplyUnlocked"):
            if clean in flagged:
                failures.append(f"clean function {clean} falsely flagged")
        if not any("stale audit entry" in e for e in an.errors):
            failures.append("stale audit entry (Widget::Bogus) not reported")
        if any("Widget::Audited" in e for e in an.errors):
            failures.append("listed+annotated site wrongly reported")
        if verbose:
            report(an, violations, warnings, verbose)
        if failures:
            print("check_lock_io --self-test: FAIL")
            for f in failures:
                print(f"  {f}")
            return 1
        print("check_lock_io --self-test: PASS "
              f"({len(flagged)} seeded violations flagged, "
              "clean/audited/scoped sites quiet, stale entry rejected)")
        return 0


def main():
    ap = argparse.ArgumentParser(
        description="no-blocking-I/O-under-engine-lock analyzer")
    ap.add_argument("--root",
                    default=os.path.dirname(os.path.dirname(
                        os.path.abspath(__file__))),
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--frontend", choices=("auto", "text", "clang"),
                    default="auto",
                    help="parser frontend; 'clang' needs python libclang "
                         "and degrades to 'text' when unavailable")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded seeded-violation self-test")
    ap.add_argument("--dump-annotated", action="store_true",
                    help="list every audited blocking site and exit")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    if args.frontend == "clang":
        try:
            import clang.cindex  # noqa: F401
            print("note: libclang frontend not yet wired; the textual "
                  "frontend is authoritative for this tree")
        except ImportError:
            print("note: python libclang unavailable; using the textual "
                  "frontend")

    if args.self_test:
        sys.exit(self_test(args.verbose))

    an = run_analysis(args.root, verbose=args.verbose)
    warnings = check_audit_list(an, args.root)
    violations = an.find_violations()
    if args.dump_annotated:
        for site in relevant_annotated(an):
            locks = ",".join(sorted(site.locks)) or "-"
            print(f"{site.file}:{site.line}\t{site.func.key}\t"
                  f"{site.callee}\t{locks}")
        sys.exit(0)
    report(an, violations, warnings, args.verbose)
    sys.exit(1 if violations or an.errors else 0)


if __name__ == "__main__":
    main()
