#!/usr/bin/env bash
# CI matrix driver. Runs one leg (./tools/ci.sh <leg>) or, with no
# argument, every leg in sequence. Legs that need a tool the host lacks
# (clang++, clang-tidy) skip with a notice instead of failing, so the
# script is useful both in CI images with the full toolchain and on
# gcc-only dev boxes.
#
# Legs:
#   lint           tools/lint.sh banned-API checks (no compiler needed)
#   lint-self-test tools/lint.sh --self-test seeded-violation check (every
#                  lint check must fire on a deliberately bad tree)
#   check-parsers  tools/check_parsers.sh corruption-contract checks over
#                  the audited untrusted-byte parsers (no compiler needed)
#   check-lock-io  tools/check_lock_io.py interprocedural lock/blocking-I/O
#                  analyzer + its --self-test (needs python3; skips without)
#   check-resource-flow
#                  tools/check_resource_flow.py interprocedural
#                  resource-leak / status-drop analyzer over src/, plus the
#                  shared-frontend unit tests (tools/test_cpp_frontend.py).
#                  Needs python3; skips without.
#   resource-flow-self-test
#                  tools/check_resource_flow.py --self-test: every analyzer
#                  rule must fire on a deliberately leaky seeded tree
#                  (needs python3; skips without)
#   gcc            g++ RelWithDebInfo, -Werror, full ctest
#   clang-tsa      clang++ with -Wthread-safety -Werror + the seeded
#                  compile-fail check (tools/check_thread_safety.sh)
#   clang-tidy     clang-tidy over src/ using .clang-tidy
#   tsan           ThreadSanitizer build + full ctest
#   tsan-obs       ThreadSanitizer build, observability tests only (fast
#                  race check over the PerfContext/StatsRegistry/listener
#                  counter paths; subset of `tsan`)
#   asan-ubsan     Address+UB sanitizer builds + full ctest
#   fuzz-smoke     libFuzzer harnesses (LSMLAB_FUZZ build, clang only),
#                  10k runs per target from the checked-in seed corpora
#
# Each leg builds in its own directory (build-ci-<leg>); sanitized and
# unsanitized objects never mix.

set -eu
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

have() { command -v "$1" >/dev/null 2>&1; }

build_and_test() {
  # $1 = build dir, remaining = extra cmake args
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

leg_lint() {
  ./tools/lint.sh
}

leg_lint_self_test() {
  ./tools/lint.sh --self-test
}

leg_check_parsers() {
  ./tools/check_parsers.sh
}

leg_check_lock_io() {
  local py="${PYTHON:-python3}"
  if ! have "$py"; then
    echo "ci[check-lock-io]: SKIP ($py not found)"
    return 0
  fi
  "$py" tools/check_lock_io.py --self-test
  "$py" tools/check_lock_io.py
}

leg_check_resource_flow() {
  local py="${PYTHON:-python3}"
  if ! have "$py"; then
    echo "ci[check-resource-flow]: SKIP ($py not found)"
    return 0
  fi
  "$py" tools/test_cpp_frontend.py
  "$py" tools/check_resource_flow.py
}

leg_resource_flow_self_test() {
  local py="${PYTHON:-python3}"
  if ! have "$py"; then
    echo "ci[resource-flow-self-test]: SKIP ($py not found)"
    return 0
  fi
  "$py" tools/check_resource_flow.py --self-test
}

leg_gcc() {
  local cxx="${CXX_GCC:-g++}"
  if ! have "$cxx"; then
    echo "ci[gcc]: SKIP ($cxx not found)"
    return 0
  fi
  CXX="$cxx" build_and_test build-ci-gcc \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSMLAB_WERROR=ON
}

leg_clang_tsa() {
  local cxx="${CLANGXX:-clang++}"
  if ! have "$cxx"; then
    echo "ci[clang-tsa]: SKIP ($cxx not found)"
    return 0
  fi
  ./tools/check_thread_safety.sh
  CXX="$cxx" build_and_test build-ci-clang \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSMLAB_WERROR=ON \
      -DLSMLAB_THREAD_SAFETY=ON
}

leg_clang_tidy() {
  local tidy="${CLANG_TIDY:-clang-tidy}"
  if ! have "$tidy"; then
    echo "ci[clang-tidy]: SKIP ($tidy not found)"
    return 0
  fi
  # compile_commands.json gives clang-tidy the real include paths/flags.
  cmake -B build-ci-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cc' | sort | xargs "$tidy" -p build-ci-tidy --quiet
}

leg_tsan() {
  # Debug keeps assert()/holder tracking live under the race detector.
  build_and_test build-ci-tsan \
      -DCMAKE_BUILD_TYPE=Debug -DLSMLAB_SANITIZE=thread
}

leg_tsan_obs() {
  # The counter/listener paths are the hot spots for new races: thread-local
  # PerfContext folded into atomic tickers, events staged under mu_ and
  # fired after release, deletions queued from VersionSet cleanups, the
  # group-commit writer queue (leader WAL I/O with mu_ released), the
  # concurrent memtable (lock-free skiplist inserts + parallel group apply),
  # and the sharded router (parallel batch fan-out over a shared background
  # pool). Run just those suites (plus the general concurrency one) under
  # TSan for a quick signal; the full `tsan` leg still covers everything.
  cmake -B build-ci-tsan -S . \
      -DCMAKE_BUILD_TYPE=Debug -DLSMLAB_SANITIZE=thread >/dev/null
  cmake --build build-ci-tsan -j "$JOBS"
  ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
      -R 'perf_context_test|listener_test|concurrency_test|crash_test|multiget_test|memtable_test|write_group_test|sharded_db_test'
}

leg_asan_ubsan() {
  build_and_test build-ci-asan \
      -DCMAKE_BUILD_TYPE=Debug -DLSMLAB_SANITIZE=address
  build_and_test build-ci-ubsan \
      -DCMAKE_BUILD_TYPE=Debug -DLSMLAB_SANITIZE=undefined
}

leg_fuzz_smoke() {
  local cxx="${CLANGXX:-clang++}"
  if ! have "$cxx"; then
    echo "ci[fuzz-smoke]: SKIP ($cxx not found; libFuzzer is clang-only)"
    return 0
  fi
  CXX="$cxx" cmake -B build-ci-fuzz -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLSMLAB_FUZZ=ON >/dev/null
  cmake --build build-ci-fuzz -j "$JOBS"
  local runs="${FUZZ_RUNS:-10000}"
  local target
  for target in fuzz_block fuzz_sstable fuzz_wal_record fuzz_version_edit \
                fuzz_write_batch fuzz_filter; do
    echo "-- $target ($runs runs)"
    "./build-ci-fuzz/fuzz/$target" "fuzz/corpora/$target" \
        -runs="$runs" -max_total_time=120 -print_final_stats=0
  done
}

run_leg() {
  echo "=== ci leg: $1 ==="
  case "$1" in
    lint)          leg_lint ;;
    lint-self-test) leg_lint_self_test ;;
    check-parsers) leg_check_parsers ;;
    check-lock-io) leg_check_lock_io ;;
    check-resource-flow) leg_check_resource_flow ;;
    resource-flow-self-test) leg_resource_flow_self_test ;;
    gcc)           leg_gcc ;;
    clang-tsa)     leg_clang_tsa ;;
    clang-tidy)    leg_clang_tidy ;;
    tsan)          leg_tsan ;;
    tsan-obs)      leg_tsan_obs ;;
    asan-ubsan)    leg_asan_ubsan ;;
    fuzz-smoke)    leg_fuzz_smoke ;;
    *)
      echo "unknown leg '$1' (legs: lint lint-self-test check-parsers check-lock-io check-resource-flow resource-flow-self-test gcc clang-tsa clang-tidy tsan tsan-obs asan-ubsan fuzz-smoke)" >&2
      return 2
      ;;
  esac
}

if [ "$#" -ge 1 ]; then
  run_leg "$1"
else
  for leg in lint lint-self-test check-parsers check-lock-io \
             check-resource-flow resource-flow-self-test \
             gcc clang-tsa clang-tidy tsan asan-ubsan fuzz-smoke; do
    run_leg "$leg"
  done
  echo "=== ci: all legs done ==="
fi
