#!/usr/bin/env python3
"""Interprocedural resource-flow & status-drop analyzer (static half of the
invariant whose runtime half lives in src/util/pin_tracker.h).

Two contracts, both over the shared frontend in tools/cpp_frontend.py:

1. Resource pairing. A call that returns a raw *owning* pointer — an
   `Iterator*` factory, `LruCache::Handle*` from Lookup/Insert — creates an
   obligation: on every path (including early `return s;` error exits) the
   value must reach a release (`delete`, `Release(h)`, wrapping into a
   smart pointer / owning constructor / container) or a documented transfer
   (returned to the caller, or a `transfers-ownership:` annotation
   cross-checked against tools/resource_audit.list; stale rows are errors).
   Acquire sources are found interprocedurally from declared return types
   (the frontend records them from both definitions and in-class
   declarations), so a helper that returns a fresh iterator makes every
   caller a tracked acquire site, and leak reports carry a witness chain
   through the transfer provenance.

2. Status drops. Every `.IgnoreError()` call site in src/ must carry a
   `status-ok:` annotation (same line or the comment run above) AND a
   matching row in tools/status_audit.list; the check is bidirectional, so
   a stale row or an annotation without a row is an error too. This is the
   same audited-exception grammar PR 7 established for
   `io-under-lock-ok:` / tools/lock_io_audit.list.

Deliberate approximations (the tool is path-insensitive and textual):
  * a binding consumed anywhere in the function counts as consumed for
    later statements too (textual order approximates path order);
  * values assigned into containers/members or passed as a call argument
    transfer ownership to the consumer;
  * braceless `if (e) return s;` bodies are not separate scopes;
  * out-param ownership (`Env::NewWritableFile(&file)`) is RAII-managed
    via unique_ptr and is covered by the runtime tracker, not this tool.

`--self-test` runs the analyzer over an embedded tree seeding direct,
interprocedural, and error-path leaks plus clean transfer/audited cases.
Exit status: 0 clean, 1 violations or consistency errors.
"""

import argparse
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from cpp_frontend import (CALL_RE, FileScanner, Frontend, collect_files,  # noqa: E402
                          load_audit_list, strip_type)

ANNOT_TRANSFER = "transfers-ownership"
ANNOT_STATUS = "status-ok"

# Raw owning pointer types (declared-return-type base -> resource kind).
RESOURCE_KINDS = {
    "Iterator": "iterator",
    "BlockIterator": "iterator",
    "Block::BlockIterator": "iterator",
    "Handle": "cache-handle",
    "LruCache::Handle": "cache-handle",
}
# Factory names treated as iterator acquires even when the receiver cannot
# be resolved (textual-frontend fallback; all return Iterator*).
FALLBACK_ACQUIRES = {
    "NewIterator", "NewEmptyIterator", "NewMergingIterator",
    "NewTwoLevelIterator", "NewDBIterator", "NewRawIterator",
    "NewRunIterator",
}

NEW_RE = re.compile(r"\bnew\s+([A-Za-z_][\w:]*)\s*[({]")
RETURN_RE = re.compile(r"^\s*(?:co_)?return\b")
DROP_RE = re.compile(r"\.\s*IgnoreError\s*\(")


def kind_from_return(ret):
    """Resource kind for a raw declared return type, or None. Requires
    exactly one '*' (Handle** is an internal link, not an obligation)."""
    if not ret or ret.count("*") != 1 or "&" in ret:
        return None
    return RESOURCE_KINDS.get(strip_type(ret))


def chain_start(stmt, pos):
    """Start offset of the full postfix chain ending at `pos` — walks left
    over `recv->`, `recv.`, `A::`, including bracketed/called receivers
    like `shards_[k]->` that CALL_RE's identifier chain cannot span."""
    i = pos
    while True:
        j = i
        while j > 0 and stmt[j - 1].isspace():
            j -= 1
        if j >= 2 and stmt[j - 2:j] in ("->", "::"):
            j -= 2
        elif j >= 1 and stmt[j - 1] == ".":
            j -= 1
        else:
            return i
        while j > 0 and stmt[j - 1].isspace():
            j -= 1
        while j > 0 and stmt[j - 1] in ")]":
            close = stmt[j - 1]
            open_ = "(" if close == ")" else "["
            depth = 0
            while j > 0:
                j -= 1
                if stmt[j] == close:
                    depth += 1
                elif stmt[j] == open_:
                    depth -= 1
                    if depth == 0:
                        break
            while j > 0 and stmt[j - 1].isspace():
                j -= 1
        k = j
        while k > 0 and (stmt[k - 1].isalnum() or stmt[k - 1] == "_"):
            k -= 1
        if k == j:
            return i
        i = k


class Binding:
    """A live raw-owning-pointer local and its release obligation."""
    __slots__ = ("name", "kind", "file", "line", "callee", "target",
                 "scope_idx", "null_scopes", "consumed")

    def __init__(self, name, kind, file, line, callee, target, scope_idx):
        self.name = name
        self.kind = kind
        self.file = file
        self.line = line          # acquire statement line
        self.callee = callee      # acquire expression text
        self.target = target      # resolved provider function key or None
        self.scope_idx = scope_idx
        self.null_scopes = set()  # scope idxs where the value is known null
        self.consumed = None      # how the obligation was met, once it was


class Leak:
    __slots__ = ("file", "line", "func", "binding", "how")

    def __init__(self, file, line, func, binding, how):
        self.file = file
        self.line = line          # where the value escapes
        self.func = func
        self.binding = binding
        self.how = how            # dropped|early-return|scope-end|function-end


class ResourceScanner(FileScanner):
    def on_function_begin(self, func):
        self.bindings = {}

    def on_function_end(self, func):
        for b in self.bindings.values():
            if b.consumed is None:
                self.an.leaks.append(
                    Leak(self.rel, b.line, func, b, "function-end"))
        self.bindings = {}

    def on_block_open(self, scope_idx, header):
        for b in self.bindings.values():
            if b.consumed is None and re.search(
                    rf"\b{b.name}\s*==\s*nullptr|!\s*{b.name}\b", header):
                b.null_scopes.add(scope_idx)

    def on_scope_close(self, scope, idx):
        if scope.kind == "function":
            return  # on_function_end reports these as function-end leaks
        dead = []
        for name, b in self.bindings.items():
            b.null_scopes.discard(idx)
            if b.scope_idx == idx:
                if b.consumed is None:
                    self.an.leaks.append(
                        Leak(self.rel, self.pending_line, self.func, b,
                             "scope-end"))
                dead.append(name)
        for name in dead:
            del self.bindings[name]

    def on_statement(self, stmt, line):
        if DROP_RE.search(stmt):
            self.record_status_drop(stmt, line)
        self.consume_events(stmt, line)
        self.find_acquires(stmt, line)
        if RETURN_RE.match(stmt.strip()):
            self.check_return_leaks(stmt, line)

    # -- status drops ------------------------------------------------------
    def record_status_drop(self, stmt, line):
        callee = "IgnoreError"
        for m in CALL_RE.finditer(stmt):
            expr = re.sub(r"\s+", "", m.group(1))
            if expr.split("::")[-1].split(".")[-1] != "IgnoreError":
                callee = expr
                break
            if expr.endswith(".IgnoreError") and len(expr) > len(
                    ".IgnoreError"):
                callee = expr[:-len(".IgnoreError")]
                break
        annotated = self.is_annotated(
            line, self.annotated_lines[ANNOT_STATUS])
        self.an.status_sites.append(
            (self.rel, line, self.func.key, callee, annotated))

    # -- obligation consumption -------------------------------------------
    def consume_events(self, stmt, line):
        is_return = RETURN_RE.match(stmt.strip()) is not None
        for b in self.bindings.values():
            if b.consumed is not None:
                continue
            nm = re.escape(b.name)
            if re.search(rf"\bdelete\s+(?:\[\]\s*)?{nm}\b", stmt):
                b.consumed = "delete"
            elif re.search(rf"[({{,]\s*(?:std::move\(\s*)?{nm}\s*[,)}}]",
                           stmt):
                b.consumed = "passed-to-consumer"
            elif is_return and re.search(rf"\b{nm}\b", stmt):
                b.consumed = "returned"
                self.record_origin(b)
            elif re.search(rf"[^=!<>+\-*/]=\s*(?:std::move\(\s*)?{nm}\b",
                           stmt):
                b.consumed = "stored"

    def record_origin(self, b):
        f = self.func
        if getattr(f, "origin", None) is None:
            f.origin = (b.file, b.line, b.callee, b.target)

    # -- acquisition -------------------------------------------------------
    def find_acquires(self, stmt, line):
        f = self.func
        seen_pos = set()
        for m in CALL_RE.finditer(stmt):
            if re.search(r"\bnew\s*$", stmt[:m.start()]):
                continue  # constructor call; NEW_RE handles the new-expr
            expr = re.sub(r"\s+", "", m.group(1))
            parts = re.split(r"\.|->", expr)
            method = parts[-1].split("::")[-1]
            if method in self.SKIP_METHODS:
                continue
            kind, target = self.an.acquire_kind(f, expr, parts, method)
            if kind is None:
                continue
            start = chain_start(stmt, m.start())
            if start in seen_pos:
                continue
            seen_pos.add(start)
            self.handle_acquire(stmt, line, start, kind, expr, target)
        for m in NEW_RE.finditer(stmt):
            ty = strip_type(m.group(1))
            if not ty.endswith("Iterator"):
                continue
            self.handle_acquire(stmt, line, m.start(), "iterator",
                                f"new {m.group(1)}", None)

    def handle_acquire(self, stmt, line, start, kind, callee, target):
        f = self.func
        prefix = stmt[:start].rstrip()
        annotated = self.is_annotated(
            line, self.annotated_lines[ANNOT_TRANSFER])
        if annotated:
            self.an.transfer_sites.append(
                (self.rel, line, f.key, callee))
            return
        if re.search(r"\breturn$", prefix):
            # Transferred to the caller; record provenance for witnesses.
            if getattr(f, "origin", None) is None:
                f.origin = (self.rel, line, callee, target)
            return
        if not prefix:
            # Bare statement: the owning pointer is dropped on the spot.
            b = Binding("<temporary>", kind, self.rel, line, callee, target,
                        len(self.scopes) - 1)
            self.an.leaks.append(Leak(self.rel, line, f, b, "dropped"))
            return
        bm = re.search(r"([A-Za-z_]\w*)\s*=$", prefix)
        if bm and not re.search(r"[=!<>+\-*/&|]\s*=$", prefix):
            name = bm.group(1)
            if name in f.locals:
                self.bindings[name] = Binding(
                    name, kind, self.rel, line, callee, target,
                    len(self.scopes) - 1)
                return
            # Member/global store: ownership escapes to the object.
            return
        # Nested inside a consumer expression (argument, smart-pointer
        # constructor, container insert, comparison): consumed there.

    # -- leak checks -------------------------------------------------------
    def check_return_leaks(self, stmt, line):
        depth = len(self.scopes) - 1
        for b in self.bindings.values():
            if b.consumed is not None or b.null_scopes:
                continue
            if b.scope_idx > depth:
                continue
            if re.search(rf"\b{re.escape(b.name)}\b", stmt):
                continue
            self.an.leaks.append(
                Leak(self.rel, line, self.func, b, "early-return"))
            b.consumed = "leak-reported"  # one report per obligation


class ResourceAnalyzer(Frontend):
    scanner_class = ResourceScanner

    def __init__(self, root, verbose=False):
        super().__init__(root, annotations=(ANNOT_TRANSFER, ANNOT_STATUS),
                         verbose=verbose)
        self.leaks = []
        self.status_sites = []    # (file, line, func key, callee, annotated)
        self.transfer_sites = []  # (file, line, func key, callee)

    def reset_pass(self):
        super().reset_pass()
        self.leaks = []
        self.status_sites = []
        self.transfer_sites = []

    def acquire_kind(self, func, expr, parts, method):
        """(kind, provider function key) when the call returns a raw owning
        resource pointer; (None, None) otherwise."""
        cls = func.cls
        resolved_any = False
        if len(parts) > 1 and "::" not in parts[-1]:
            recv = self.resolve_chain(parts[:-1], func, cls)
            targets = [f"{recv}::{method}"] if recv is not None else []
        elif "::" in expr:
            targets = [expr[2:] if expr.startswith("::") else expr]
        elif cls is not None:
            targets = [f"{cls}::{method}", method]
        else:
            targets = [method]
        for t in targets:
            g = self.lookup(t)
            ret = self.return_type_of(t)
            if g is not None or ret is not None:
                resolved_any = True
            kind = kind_from_return(ret)
            if kind is None:
                continue
            return kind, g.key if g is not None else t
        if not resolved_any and method in FALLBACK_ACQUIRES:
            return "iterator", None
        return None, None

    def witness_chain(self, binding, limit=6):
        """Provenance steps behind an acquire: follow each provider's
        recorded return-transfer origin."""
        chain = []
        target = binding.target
        while target is not None and len(chain) < limit:
            fn = self.lookup(target)
            origin = getattr(fn, "origin", None) if fn is not None else None
            if origin is None:
                break
            chain.append((fn.key, origin))
            target = origin[3]
        return chain


def check_resource_audit(an, root):
    path = os.path.join(root, "tools", "resource_audit.list")
    entries = load_audit_list(path, an.errors)
    used = set()
    for file, line, fkey, callee in an.transfer_sites:
        hit = None
        for e in entries:
            if (e[1], e[2], e[3]) == (file, fkey, callee):
                hit = e
                break
        if hit is None:
            an.errors.append(
                f"{file}:{line}: {ANNOT_TRANSFER} site [{fkey}] {callee!r} "
                f"is missing from tools/resource_audit.list")
        else:
            used.add(hit[0])
    for e in entries:
        if e[0] not in used:
            an.errors.append(
                f"{path}:{e[0]}: stale audit entry ({e[1]}, {e[2]}, "
                f"{e[3]!r}) matches no {ANNOT_TRANSFER} acquire in src/")


def check_status_audit(an, root):
    path = os.path.join(root, "tools", "status_audit.list")
    entries = load_audit_list(path, an.errors)
    used = set()
    drops = []
    for file, line, fkey, callee, annotated in an.status_sites:
        if not annotated:
            drops.append((file, line, fkey, callee))
            continue
        hit = None
        for e in entries:
            if (e[1], e[2], e[3]) == (file, fkey, callee):
                hit = e
                break
        if hit is None:
            an.errors.append(
                f"{file}:{line}: {ANNOT_STATUS} drop [{fkey}] {callee!r} "
                f"is missing from tools/status_audit.list")
        else:
            used.add(hit[0])
    for e in entries:
        if e[0] not in used:
            an.errors.append(
                f"{path}:{e[0]}: stale audit entry ({e[1]}, {e[2]}, "
                f"{e[3]!r}) matches no annotated IgnoreError site in src/")
    return drops


def run_analysis(root, verbose=False):
    an = ResourceAnalyzer(root, verbose=verbose)
    an.run(collect_files(root))
    return an


HOW_TEXT = {
    "dropped": "acquired and dropped on the spot",
    "early-return": "escapes via early return",
    "scope-end": "escapes at end of scope",
    "function-end": "escapes at end of function",
}


def report(an, drops, verbose):
    for e in an.errors:
        print(f"error: {e}")
    for lk in sorted(an.leaks, key=lambda l: (l.file, l.line)):
        b = lk.binding
        print(f"LEAK {lk.file}:{lk.line} in [{lk.func.key}]: "
              f"{b.kind} '{b.name}' {HOW_TEXT[lk.how]} without "
              f"release or documented transfer")
        print(f"    acquired at {b.file}:{b.line} from {b.callee}(...)")
        for fkey, (ofile, oline, ocallee, _) in an.witness_chain(b):
            print(f"    -> [{fkey}] transfers a value acquired from "
                  f"{ocallee}(...) at {ofile}:{oline}")
    for file, line, fkey, callee in sorted(drops):
        print(f"DROP {file}:{line} in [{fkey}]: {callee}(...) status "
              f"discarded without a {ANNOT_STATUS} annotation")
    if not an.leaks and not drops and not an.errors:
        n_acq = sum(
            1 for f in an.functions.values()
            if getattr(f, "origin", None) is not None)
        print(f"check_resource_flow: OK — {len(an.functions)} functions, "
              f"{n_acq} transfer sources, "
              f"{len(an.status_sites)} audited status drops, "
              f"0 unaudited acquire-without-release paths, "
              f"0 unaudited status drops")


# -------------------------------------------------------------- self-test --
SELF_TEST_H = """\
#pragma once
namespace lsmlab {
class Slice;
class Status;
class Iterator {
 public:
  virtual ~Iterator();
  virtual void SeekToFirst() = 0;
};
class Table {
 public:
  Iterator* NewIterator() const;
};
class Cache {
 public:
  struct Handle;
  Handle* Lookup(const Slice& key);
  void Release(Handle* h);
};
class Store {
 public:
  void DirectLeak();
  void DroppedLeak();
  Iterator* MakeIterator();
  void IndirectLeak(bool err);
  Status ErrorPathLeak(bool fail);
  void CleanRelease();
  void CleanTransfer();
  void AuditedEscape();
  void UnlistedEscape();
  void StatusDrops();
 private:
  Status Prepare();
  Status Cleanup();
  Status Teardown();
  Table* table_;
  Cache* cache_;
  std::vector<Iterator*> registry_;
};
}  // namespace lsmlab
"""

SELF_TEST_CC = """\
#include "store.h"
namespace lsmlab {

void Store::DirectLeak() {
  Iterator* it = table_->NewIterator();
  it->SeekToFirst();
}  // seeded: leak at end of function

void Store::DroppedLeak() {
  table_->NewIterator();  // seeded: owning pointer dropped on the spot
}

Iterator* Store::MakeIterator() {
  return table_->NewIterator();  // clean: ownership transfers to caller
}

void Store::IndirectLeak(bool err) {
  Iterator* it = MakeIterator();  // interprocedural acquire
  if (err) {
    return;  // seeded: early return leaks it
  }
  delete it;
}

Status Store::ErrorPathLeak(bool fail) {
  Cache::Handle* h = cache_->Lookup(Slice("k"));
  Status s = Prepare();
  if (!s.ok()) {
    return s;  // seeded: error path drops the pinned handle
  }
  cache_->Release(h);
  return Status::OK();
}

void Store::CleanRelease() {
  Cache::Handle* h = cache_->Lookup(Slice("k"));
  if (h == nullptr) {
    return;  // clean: the obligation is void on the null path
  }
  cache_->Release(h);
}

void Store::CleanTransfer() {
  Iterator* it = MakeIterator();
  registry_.push_back(it);  // clean: moved into an owning container
}

void Store::AuditedEscape() {
  // transfers-ownership: self-registering iterator; listed in the audit.
  table_->NewIterator();
}

void Store::UnlistedEscape() {
  // transfers-ownership: annotated but missing from the list -> error.
  table_->NewIterator();
}

void Store::StatusDrops() {
  Cleanup().IgnoreError();  // seeded: unaudited status drop
  // status-ok: best-effort teardown; listed in status_audit.list.
  Teardown().IgnoreError();
}

}  // namespace lsmlab
"""

SELF_TEST_RESOURCE_AUDIT = (
    "# file\tfunction\tcallee\treason\n"
    "src/store.cc\tStore::AuditedEscape\ttable_->NewIterator\t"
    "self-test exception\n"
    "src/store.cc\tStore::Bogus\ttable_->NewIterator\t"
    "stale entry, must error\n"
)

SELF_TEST_STATUS_AUDIT = (
    "# file\tfunction\tcallee\treason\n"
    "src/store.cc\tStore::StatusDrops\tTeardown\tself-test exception\n"
    "src/store.cc\tStore::Bogus\tTeardown\tstale entry, must error\n"
)


def self_test(verbose):
    with tempfile.TemporaryDirectory(prefix="check_resource_flow_") as tmp:
        os.makedirs(os.path.join(tmp, "src"))
        os.makedirs(os.path.join(tmp, "tools"))
        paths = {
            "src/store.h": SELF_TEST_H,
            "src/store.cc": SELF_TEST_CC,
            "tools/resource_audit.list": SELF_TEST_RESOURCE_AUDIT,
            "tools/status_audit.list": SELF_TEST_STATUS_AUDIT,
        }
        for rel, content in paths.items():
            with open(os.path.join(tmp, rel), "w") as f:
                f.write(content)
        an = run_analysis(tmp, verbose=verbose)
        check_resource_audit(an, tmp)
        drops = check_status_audit(an, tmp)
        flagged = {(lk.func.key, lk.how) for lk in an.leaks}
        failures = []
        for expect in (("Store::DirectLeak", "function-end"),
                       ("Store::DroppedLeak", "dropped"),
                       ("Store::IndirectLeak", "early-return"),
                       ("Store::ErrorPathLeak", "early-return")):
            if expect not in flagged:
                failures.append(
                    f"seeded {expect[1]} leak in {expect[0]} NOT flagged")
        for clean in ("Store::MakeIterator", "Store::CleanRelease",
                      "Store::CleanTransfer", "Store::AuditedEscape"):
            if any(k == clean for k, _ in flagged):
                failures.append(f"clean function {clean} falsely flagged")
        # The interprocedural leak must carry a witness through the helper.
        indirect = [lk for lk in an.leaks
                    if lk.func.key == "Store::IndirectLeak"]
        if indirect and not an.witness_chain(indirect[0].binding):
            failures.append(
                "interprocedural leak has no witness chain through "
                "Store::MakeIterator")
        drop_funcs = {d[2] for d in drops}
        if "Store::StatusDrops" not in drop_funcs:
            failures.append("seeded unaudited status drop NOT flagged")
        if len(drops) != 1:
            failures.append(
                f"expected exactly 1 unaudited drop, got {len(drops)}")
        if not any("stale audit entry" in e and "resource_audit" in e
                   for e in an.errors):
            failures.append("stale resource_audit entry not reported")
        if not any("stale audit entry" in e and "status_audit" in e
                   for e in an.errors):
            failures.append("stale status_audit entry not reported")
        if not any("Store::UnlistedEscape" in e for e in an.errors):
            failures.append(
                "annotated-but-unlisted transfer site not reported")
        if any("Store::AuditedEscape" in e for e in an.errors):
            failures.append("listed+annotated transfer wrongly reported")
        if verbose:
            report(an, drops, verbose)
        if failures:
            print("check_resource_flow --self-test: FAIL")
            for f in failures:
                print(f"  {f}")
            return 1
        print("check_resource_flow --self-test: PASS "
              f"({len(an.leaks)} seeded leaks flagged with witnesses, "
              "clean transfer/release/audited cases quiet, "
              "stale rows rejected)")
        return 0


def main():
    ap = argparse.ArgumentParser(
        description="resource acquire/release pairing + audited status-drop "
                    "analyzer")
    ap.add_argument("--root",
                    default=os.path.dirname(os.path.dirname(
                        os.path.abspath(__file__))),
                    help="repo root (default: parent of tools/)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded seeded-violation self-test")
    ap.add_argument("--dump-status", action="store_true",
                    help="print every IgnoreError site as audit-list rows "
                         "and exit")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test(args.verbose))

    an = run_analysis(args.root, verbose=args.verbose)
    if args.dump_status:
        for file, line, fkey, callee, annotated in sorted(an.status_sites):
            mark = "audited" if annotated else "UNAUDITED"
            print(f"{file}\t{fkey}\t{callee}\t{mark} (line {line})")
        sys.exit(0)
    check_resource_audit(an, args.root)
    drops = check_status_audit(an, args.root)
    report(an, drops, args.verbose)
    sys.exit(1 if an.leaks or drops or an.errors else 0)


if __name__ == "__main__":
    main()
