#!/usr/bin/env bash
# Banned-API and annotation-discipline lint for lsmlab.
#
# Checks (all over src/ unless noted):
#   1. No raw std::mutex / std::lock_guard / std::unique_lock /
#      std::condition_variable outside src/util/mutex.h. Raw primitives are
#      invisible to clang's thread-safety analysis; everything must go
#      through lsmlab::Mutex / MutexLock / CondVar.
#   2. NO_THREAD_SAFETY_ANALYSIS appears only in src/util/mutex.h (the
#      CondVar adopt/release dance) and the header defining the macro.
#   3. No rand()/srand() — benchmarks and tests must use the seeded
#      generators in util/random.h so runs are reproducible.
#   4. No `(void)` casts of Status results — intentional drops must use the
#      grep-able Status::IgnoreError(). The allowlist (snprintf & friends)
#      is matched against the *called identifier*, not the whole line, so
#      `(void)DropStatus(snprintf(...))` cannot hide behind its argument.
#   5. No direct IoStats pokes (RecordRead/RecordAppend/RecordSync) outside
#      src/storage. I/O accounting happens exactly once, at the Env file
#      wrappers; a second call site would double-count and break the
#      PerfContext <-> IoStats reconciliation the tests assert. The
#      blocking-I/O-under-lock guard (util/mutex.h) also lives behind these
#      chokepoints, so a bypass would dodge it too.
#   6. No assert() in the untrusted-byte parsers listed in
#      tools/parser_audit.list: asserts compile out of release builds, so
#      corruption must surface as Status, never as an invariant check.
#      (tools/check_parsers.sh enforces the rest of the parser contract.)
#   7. No per-key I/O calls in the batch read path. The whole point of
#      MultiGet is one open per table and one fetch per distinct block;
#      a stray Read/open in those files silently reverts it to a looped
#      Get. Deliberate, amortized calls carry a `batch-io-ok:` comment.
#   8. No WAL appends or WAL-file syncs outside the group-commit module
#      (src/core/db_write.cc). The writer-queue protocol is what makes
#      unlocked WAL I/O safe (one leader at a time, log_busy_ excludes
#      rotation) and what keeps the wal.group_commits / wal.syncs /
#      wal.sync_skipped reconciliation exact; a stray append or sync
#      elsewhere bypasses both. Deliberate exceptions carry a
#      `group-commit-ok:` comment.
#   9. Every `.IgnoreError()` call site carries a `status-ok:` annotation
#      on the call line or within the two lines above. This is the textual
#      backstop for tools/check_resource_flow.py, whose scanner skips
#      lambda bodies: the interprocedural tool matches annotated sites
#      bidirectionally against tools/status_audit.list, while this check
#      guarantees no site anywhere — lambda or not — drops a Status
#      without a written reason. The declaration in status.h is exempt
#      (matched as a definition, not a call).
#
# `lint.sh --self-test` seeds a throwaway tree with one violation per check
# and asserts every check fires (the same discipline as
# tools/check_parsers.sh and tools/check_lock_io.py --self-test).
#
# Exit code 0 = clean, 1 = violations found.

set -u

if [ "${1:-}" = "--self-test" ]; then
  self="$(cd "$(dirname "$0")" && pwd)/$(basename "$0")"
  tmp="$(mktemp -d -t lint_self_test.XXXXXX)"
  trap 'rm -rf "$tmp"' EXIT
  mkdir -p "$tmp/src/core" "$tmp/src/memtable" "$tmp/tools"
  # check 1 must fire inside the lock-free skiplist specifically: a raw
  # mutex smuggled into the concurrent-insert path would be invisible to
  # the thread-safety analysis AND would break the lock-free reader
  # contract, so the self-test pins the ban to that file.
  cat > "$tmp/src/memtable/skiplist.h" << 'EOF'
template <typename Key>
class SkipList {
  std::mutex splice_mu_;                              // check 1: raw mutex in the lock-free skiplist
};
EOF
  cat > "$tmp/src/core/seeded.cc" << 'EOF'
std::mutex raw_mu;                                    // check 1
void Escape() NO_THREAD_SAFETY_ANALYSIS;              // check 2
int Dice() { return rand(); }                         // check 3
void Drop() { (void)DoThing(); }                      // check 4
void Hide() { (void)DropStatus(snprintf(b, 1, "x")); }  // check 4: arg must not excuse the call
void Ok() { (void)snprintf(b, 1, "x"); }              // check 4: allowlisted callee, must NOT fire
void Poke() { stats_->RecordSync(); }                 // check 5
void Wal() { wal_file_->Sync(); }                     // check 8
void Quiet() { DoThing().IgnoreError(); }             // check 9
void Loud() {
  // status-ok: documented drop, must NOT fire
  DoOther().IgnoreError();
}
EOF
  cat > "$tmp/src/core/db_multiget.cc" << 'EOF'
void Batch() { file->Read(0, n, &result, scratch); }  // check 7
EOF
  cat > "$tmp/src/core/parser.cc" << 'EOF'
void Parse() { assert(len > 0); }                     // check 6
EOF
  echo "src/core/parser.cc" > "$tmp/tools/parser_audit.list"

  out="$(LINT_ROOT="$tmp" bash "$self" 2>&1)"
  rc=$?
  fail=0
  expect() {
    if ! grep -qF "$1" <<< "$out"; then
      echo "lint --self-test: check did not fire: $1"
      fail=1
    fi
  }
  expect "raw std synchronization primitive"
  if ! grep -q 'src/memtable/skiplist.h' <<< "$out"; then
    echo "lint --self-test: raw std::mutex seeded in the skiplist not flagged"
    fail=1
  fi
  expect "NO_THREAD_SAFETY_ANALYSIS outside"
  expect "rand()/srand()"
  expect "(void)-cast call result"
  expect "DropStatus"                # fixed check 4: callee filter, not line filter
  expect "direct IoStats poke"
  expect "assert() in an audited parser"
  expect "unannotated I/O call in a batch-path file"
  expect "WAL append/sync outside"
  expect "Status dropped without a status-ok: annotation"
  if grep -qE '^\s+.*\(void\)snprintf' <<< "$out"; then
    echo "lint --self-test: allowlisted (void)snprintf wrongly flagged"
    fail=1
  fi
  if grep -q 'DoOther' <<< "$out"; then
    echo "lint --self-test: annotated IgnoreError wrongly flagged"
    fail=1
  fi
  if [ "$rc" -eq 0 ]; then
    echo "lint --self-test: seeded tree passed the lint (expected failure)"
    fail=1
  fi
  if [ "$fail" -eq 0 ]; then
    echo "lint --self-test: PASS (all 9 checks fire on seeded violations)"
  fi
  exit "$fail"
fi

cd "${LINT_ROOT:-$(dirname "$0")/..}"

# report() is the last element of each check's pipeline; without lastpipe
# it would run in a subshell and its fail=1 could never reach this shell,
# turning every violation into exit 0.
shopt -s lastpipe

fail=0

report() {
  # $1 = message, stdin = offending grep output (empty = pass)
  local out
  out=$(cat)
  if [ -n "$out" ]; then
    echo "LINT: $1"
    echo "$out" | sed 's/^/  /'
    echo
    fail=1
  fi
}

# 1. Raw synchronization primitives outside the wrapper.
grep -rnE 'std::(mutex|lock_guard|unique_lock|scoped_lock|condition_variable)' \
    src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/util/mutex.h:' \
  | report "raw std synchronization primitive (use util/mutex.h wrappers)"

# 2. Analysis escapes are confined to the wrapper layer.
grep -rn 'NO_THREAD_SAFETY_ANALYSIS' \
    src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/util/mutex.h:' \
  | grep -v '^src/util/thread_annotations.h:' \
  | report "NO_THREAD_SAFETY_ANALYSIS outside util/mutex.h"

# 3. Unseeded C randomness anywhere in the tree.
grep -rnE '\b(s?rand)\(' \
    src/ tests/ bench/ examples/ --include='*.h' --include='*.cc' \
  | report "rand()/srand() (use the seeded generators in util/random.h)"

# 4. Casting a Status to void instead of IgnoreError(). The allowlist is
#    applied to the identifier actually being called (the last component of
#    the callee expression), never to the rest of the line — an argument or
#    a comment containing "printf" must not excuse a dropped Status.
grep -rnE '\(void\) *[A-Za-z_][A-Za-z0-9_:>.-]*\(' \
    src/ tests/ bench/ examples/ --include='*.h' --include='*.cc' \
  | awk '{
      line = $0
      sub(/^[^:]*:[0-9]+:/, "", line)          # strip file:line prefix
      while (match(line, /\(void\) *[A-Za-z_][A-Za-z0-9_:>.-]*\(/)) {
        callee = substr(line, RSTART, RLENGTH)
        line = substr(line, RSTART + RLENGTH)
        sub(/^\(void\) */, "", callee)         # drop the cast
        sub(/\($/, "", callee)                 # drop the call paren
        n = split(callee, parts, /::|->|\./)   # called identifier
        if (parts[n] !~ /^(snprintf|printf|fprintf|fwrite|fread|memcpy|memmove|memset|assert)$/) {
          print $0
          break
        }
      }
    }' \
  | report "(void)-cast call result (if it returns Status, use .IgnoreError())"

# 5. IoStats mutation is the storage layer's job alone. RecordSync is in
#    the set too: it feeds both the syncs counter and the
#    blocking-I/O-under-lock runtime guard.
grep -rnE '\bRecord(Read|Append|Sync)\(' \
    src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/storage/' \
  | report "direct IoStats poke outside src/storage (I/O is charged once, in the Env wrappers)"

# 6. assert() in audited untrusted-byte parsers (tools/parser_audit.list).
#    \bassert\( does not match static_assert(; `builder-ok:` marks a
#    trusted build-side invariant inside an otherwise-audited file.
grep -v -e '^#' -e '^$' tools/parser_audit.list \
  | xargs grep -nE '\bassert\(' 2>/dev/null \
  | grep -v 'builder-ok:' \
  | report "assert() in an audited parser (corrupt bytes must return Status::Corruption; see tools/check_parsers.sh)"

# 7. Per-key I/O in the batch read path. Any block read, file read, or
#    file open in these files must be the amortized one (annotated
#    `batch-io-ok:` on the call line or the line above); anything else is
#    a looped-Get regression hiding inside MultiGet.
BATCH_PATH_FILES="src/core/db_multiget.cc src/core/table_cache.cc"
for f in $BATCH_PATH_FILES; do
  [ -f "$f" ] || continue
  awk -v file="$f" '
    /ReadBlock\(|->Read\(|NewRandomAccessFile\(|NewSequentialFile\(/ {
      if ($0 !~ /batch-io-ok:/ && prev !~ /batch-io-ok:/) {
        printf "%s:%d: %s\n", file, NR, $0
      }
    }
    { prev = $0 }
  ' "$f"
done | report "unannotated I/O call in a batch-path file (coalesce it, or mark the amortized call with batch-io-ok:)"

# 8. WAL appends/syncs happen only inside the group-commit module. The
#    DBImpl members are wal_ (the record writer) and wal_file_ (the
#    underlying file); touching their append/sync surface anywhere else
#    bypasses the writer queue — the leader is the only thread the
#    protocol lets near the log, and the ticker reconciliation
#    (group_commits == syncs + sync_skipped) assumes it. Annotate a
#    deliberate exception with `group-commit-ok:` on the call line.
grep -rnE 'wal_->AddRecord\(|wal_file_->Sync\(|wal_file_->Flush\(' \
    src/ --include='*.h' --include='*.cc' \
  | grep -v '^src/core/db_write.cc:' \
  | grep -v 'group-commit-ok:' \
  | report "WAL append/sync outside src/core/db_write.cc (route it through the writer queue, or mark it group-commit-ok:)"

# 9. Undocumented Status drops. Sites inside lambda bodies are invisible
#    to check_resource_flow.py's scanner, so this textual pass is the
#    guarantee that every drop in the tree has a written reason; the
#    Python tool then cross-checks the non-lambda sites against
#    tools/status_audit.list.
#    A `status-ok:` annotation excuses the statement it precedes: the
#    pending flag survives comment and continuation lines and clears when
#    a statement completes, so multi-line calls and multi-line comments
#    both work. Comment-only lines never match as call sites.
grep -rl --include='*.h' --include='*.cc' -E '(\.|->)IgnoreError\(\)' src/ 2>/dev/null \
  | while read -r f; do
      awk -v file="$f" '
        {
          stripped = $0
          sub(/^[[:space:]]+/, "", stripped)
        }
        stripped ~ /^\/\// {
          if ($0 ~ /status-ok:/) pending = 1
          next
        }
        {
          if ($0 ~ /status-ok:/) pending = 1
          if ($0 ~ /(\.|->)IgnoreError\(\)/ && !pending) {
            printf "%s:%d: %s\n", file, NR, $0
          }
          if ($0 ~ /[;{}][[:space:]]*$/) pending = 0
        }
      ' "$f"
    done \
  | report "Status dropped without a status-ok: annotation (write the reason on the call line or just above; see tools/status_audit.list)"

if [ "$fail" -eq 0 ]; then
  echo "lint: OK"
fi
exit "$fail"
