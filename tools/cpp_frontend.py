#!/usr/bin/env python3
"""Shared textual C++ frontend for lsmlab's interprocedural analyzers.

Factored out of tools/check_lock_io.py (PR 7) so that the lock/blocking-I/O
analyzer and the resource-flow/status-drop analyzer
(tools/check_resource_flow.py) parse the tree exactly once each with the
same machinery:

  * preprocess()   -- blanks comments / string literals / preprocessor
                      lines in place (same text length, newlines kept) and
                      records which lines carry which audit annotations,
  * FileScanner    -- a character-level scope-stack scanner that recognizes
                      namespaces, classes, functions (in-class and
                      out-of-class definitions), lambdas (skipped), blocks
                      and brace-initializers, splits statements, tracks
                      MutexLock scopes and raw Lock()/Unlock() spans with
                      suspend/auto-restore for early-exit unlock patterns,
                      and extracts call sites,
  * Frontend       -- the per-tree fact base: the project call graph
                      (Function/Site), class member -> type maps, method
                      declaration metadata (REQUIRES entry locks, return
                      types), receiver-chain resolution, and the
                      unique-suffix function lookup.

Analyzers subclass FileScanner (hook methods `on_*`) and/or Frontend
(`classify_call`) to attach their own semantics; the parsing itself is
identical for every tool, so a scanner fix benefits all of them at once.
Unit tests: tools/test_cpp_frontend.py.

Pure stdlib, python3 only.
"""

import json
import os
import re

KEYWORDS = {
    "if", "while", "for", "switch", "return", "sizeof", "catch", "new",
    "delete", "assert", "defined", "alignof", "decltype", "static_cast",
    "reinterpret_cast", "const_cast", "dynamic_cast", "static_assert",
    "throw", "noexcept", "alignas", "typeid", "co_await", "co_return",
}
ATTR_MACROS = ("GUARDED_BY", "ACQUIRED_AFTER", "ACQUIRED_BEFORE", "REQUIRES",
               "EXCLUDES", "RETURN_CAPABILITY", "CAPABILITY",
               "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
               "ASSERT_CAPABILITY", "ACQUIRE", "RELEASE", "TRY_ACQUIRE")
PTR_WRAPPERS = ("std::unique_ptr", "std::shared_ptr", "unique_ptr",
                "shared_ptr")

CALL_RE = re.compile(
    r"((?:::)?[A-Za-z_]\w*(?:\s*(?:\.|->|::)\s*~?[A-Za-z_]\w*)*)\s*\(")
MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*&\s*([^()]+?)\s*\)")
LOCK_CALL_RE = re.compile(r"([\w.>\-]+?)\s*(?:\.|->)\s*(Lock|Unlock)\s*\(")
DECL_RE = re.compile(
    r"^\s*([A-Za-z_][\w:]*(?:<[^;={}]*?>)?)\s*[*&]*\s+(\w+)\s*"
    r"(?:=|\(|\{|;|\s*$)")
CV_RE = re.compile(r"\b(const|constexpr|volatile|mutable|static|inline)\b")
SIG_NAME_RE = re.compile(r"([\w:~]+)\s*$")
RET_QUAL_RE = re.compile(
    r"\b(virtual|static|explicit|inline|constexpr|friend|const|mutable)\b")


def preprocess(text, annotations=()):
    """Blank comments, strings, and preprocessor lines (same length;
    newlines kept). Returns (code, annotated, comment_only_lines) where
    `annotated` maps each keyword in `annotations` to the set of line
    numbers whose comments contain it."""
    out = list(text)
    n = len(text)
    i = 0
    annotated = {kw: set() for kw in annotations}
    line = 1
    line_has_code = {}
    line_has_comment = {}

    def blank(j):
        if out[j] != "\n":
            out[j] = " "

    def note(seg, ln):
        for kw in annotations:
            if kw in seg:
                annotated[kw].add(ln)

    # Pass 1: preprocessor lines (incl. backslash continuations).
    at_line_start = True
    in_pp = False
    while i < n:
        c = text[i]
        if at_line_start and not in_pp and text[i:].lstrip(" \t")[:1] == "#":
            in_pp = True
        if in_pp:
            if c == "\n":
                in_pp = text[i - 1] == "\\" if i > 0 else False
            else:
                blank(i)
        at_line_start = c == "\n"
        i += 1
    text2 = "".join(out)

    # Pass 2: comments and string/char literals.
    i = 0
    while i < n:
        c = text2[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if text2.startswith("//", i):
            end = text2.find("\n", i)
            end = n if end < 0 else end
            note(text2[i:end], line)
            line_has_comment[line] = True
            for j in range(i, end):
                blank(j)
            i = end
            continue
        if text2.startswith("/*", i):
            end = text2.find("*/", i + 2)
            end = n - 2 if end < 0 else end
            seg = text2[i:end + 2]
            for k, part in enumerate(seg.split("\n")):
                note(part, line + k)
                line_has_comment[line + k] = True
            for j in range(i, end + 2):
                blank(j)
            line += seg.count("\n")
            i = end + 2
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and text2[j] != quote:
                if text2[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, min(j, n)):
                blank(k)
            i = min(j, n - 1) + 1
            continue
        if not c.isspace():
            line_has_code[line] = True
        i += 1
    code = "".join(out)
    comment_only = {ln for ln in line_has_comment if ln not in line_has_code}
    return code, annotated, comment_only


class Site:
    """One call site inside a function body."""
    __slots__ = ("file", "line", "func", "callee", "method", "locks",
                 "annotated", "notes", "leaf", "targets")

    def __init__(self, file, line, func, callee, method, locks, annotated,
                 leaf, targets, notes=frozenset()):
        self.file = file            # repo-relative path
        self.line = line
        self.func = func            # Function owning the site
        self.callee = callee        # normalized callee expression
        self.method = method        # last component
        self.locks = locks          # frozenset of held no-io lock names
        self.annotated = annotated  # primary annotation applies here
        self.notes = notes          # frozenset of all annotation keywords
        self.leaf = leaf            # None or tool-defined leaf-kind string
        self.targets = targets      # list of resolved Function keys


class Function:
    def __init__(self, key, file, line, cls, requires, returns=None):
        self.key = key              # e.g. "DBImpl::FlushImmMemTable"
        self.file = file
        self.line = line
        self.cls = cls              # owning class key or None
        self.requires = requires    # qualified entry-lock names
        self.returns = returns      # raw declared return type text or None
        self.sites = []
        self.locals = {}            # name -> normalized type
        self.io_reach = None        # witness Site once known to reach a leaf


class Scope:
    __slots__ = ("kind", "name", "acquired")

    def __init__(self, kind, name=""):
        self.kind = kind  # namespace|class|function|block|lambda|inline
        self.name = name
        self.acquired = []  # lock names acquired in this scope (MutexLock)


class Lock:
    """A lock-held span inside the current function."""
    __slots__ = ("name", "scope_idx", "suspended")

    def __init__(self, name, scope_idx):
        self.name = name          # qualified registered lock name
        self.scope_idx = scope_idx  # scope stack index owning the acquire
        self.suspended = None     # scope idx where a deeper Unlock happened


def strip_type(t):
    """Normalize a declared type to a bare class key."""
    t = t.strip()
    t = re.sub(r"\b(const|constexpr|static|mutable|volatile|inline)\b", "", t)
    t = t.strip().rstrip("*& ")
    for w in PTR_WRAPPERS:
        if t.startswith(w + "<") and t.endswith(">"):
            t = t[len(w) + 1:-1]
            return strip_type(t)
    t = t.replace("*", "").replace("&", "").strip()
    if t.startswith("lsmlab::"):
        t = t[len("lsmlab::"):]
    return t


def match_decl(s):
    """DECL_RE with cv/storage qualifiers stripped (handles `Env* const x;`
    as well as `const Env* x;`)."""
    return DECL_RE.match(CV_RE.sub(" ", s).strip())


class Frontend:
    """Per-tree fact base shared by the analyzers.

    `annotations` lists every audit-comment keyword the tool cares about;
    the first entry is the *primary* one reflected in Site.annotated (the
    others are available via Site.notes). `rank_names` maps qualified lock
    names to (rank, io_ok) — tools that do not track locks leave it empty,
    which makes every held-lock set empty.
    """

    scanner_class = None  # set below (FileScanner); overridable by tools

    def __init__(self, root, annotations=(), verbose=False):
        self.root = root
        self.verbose = verbose
        self.annotations = tuple(annotations)
        self.functions = {}       # key -> Function (first definition wins)
        self.class_members = {}   # class key -> {member: type}
        self.decl_requires = {}   # (class key, method) -> [lock exprs]
        self.decl_returns = {}    # (class key, method) -> raw return type
        self.mutex_members = []   # (class key, member, enum-or-None, file, ln)
        self.annotated_sites = [] # every Site carrying the primary annotation
        self.unresolved = []      # (file, line, callee) skipped calls
        self.rank_names = {}      # lock name -> (rank, io_ok)
        self.errors = []

    # -- scanning ---------------------------------------------------------
    def scan_file(self, path):
        rel = os.path.relpath(path, self.root)
        with open(path) as f:
            text = f.read()
        code, annotated, comment_only = preprocess(text, self.annotations)
        scanner = (self.scanner_class or FileScanner)(
            self, rel, code, annotated, comment_only)
        scanner.run()

    def run(self, files):
        """Two passes: the first builds type maps / declaration metadata /
        mutex-member facts, the second resolves receivers and lock names
        with the complete maps. Cheap (the tree is small) and
        order-independent."""
        for phase in (1, 2):
            if phase == 2:
                self.reset_pass()
            for path in files:
                self.scan_file(path)

    def reset_pass(self):
        """Drop pass-1 facts that pass 2 rebuilds with complete type maps.
        Subclasses extend this to clear their own per-pass collections."""
        self.functions = {}
        self.annotated_sites = []
        self.mutex_members = []
        self.unresolved = []

    # -- resolution -------------------------------------------------------
    def qualify_lock(self, expr, func, cls):
        """Map a lock expression (`mu_`, `shard->mu`, `state_->mu`) to its
        registered name, or None if it is not a ranked lock."""
        expr = expr.replace(" ", "")
        parts = re.split(r"\.|->", expr)
        if len(parts) == 1:
            owner = cls
        else:
            owner = self.resolve_chain(parts[:-1], func, cls)
        member = parts[-1]
        if owner:
            qual = f"{owner}::{member}"
            if qual in self.rank_names:
                return qual
        # Fallback: unique suffix match against registered names. Tries the
        # partially-qualified form first (`Shard::mu` -> LruCache::Shard::mu)
        # and the bare member last (`readers_mu_` is unique; `mu_` is not).
        for needle in ([f"{owner}::{member}"] if owner else []) + [member]:
            hits = [n for n in self.rank_names
                    if n == needle or n.endswith("::" + needle)]
            if len(hits) == 1:
                return hits[0]
        return None

    def resolve_chain(self, parts, func, cls):
        """Resolve a receiver chain like ['options_', 'env'] to a class key."""
        if not parts:
            return None
        first = parts[0]
        t = None
        if func is not None and first in func.locals:
            t = func.locals[first]
        elif cls and first in self.class_members.get(cls, {}):
            t = self.class_members[cls][first]
        elif first == "this":
            t = cls
        else:
            # Unique match across all known class members (helps for
            # nested-class receivers like `state_` used from inner classes).
            hits = {m[first] for m in self.class_members.values()
                    if first in m}
            if len(hits) == 1:
                t = hits.pop()
        if t is None:
            return None
        for comp in parts[1:]:
            members = self.class_members.get(t)
            if members is None or comp not in members:
                return None
            t = members[comp]
        return t

    def lookup(self, key):
        """Function lookup with a unique-suffix fallback so `Shard::Unref`
        finds `LruCache::Shard::Unref`."""
        f = self.functions.get(key)
        if f is not None:
            return f
        hits = [g for k, g in self.functions.items()
                if k.endswith("::" + key)]
        return hits[0] if len(hits) == 1 else None

    def return_type_of(self, key):
        """Raw declared return type for a function key, preferring the
        definition's signature and falling back to the in-class
        declaration. None when unknown (constructors, unseen functions)."""
        f = self.lookup(key)
        if f is not None and f.returns:
            return f.returns
        if "::" in key:
            cls, _, name = key.rpartition("::")
            ret = self.decl_returns.get((cls, name))
            if ret:
                return ret
        return None

    # -- tool hook --------------------------------------------------------
    def classify_call(self, scanner, func, cls, expr, parts, method):
        """Return (leaf, targets): `leaf` is a tool-defined kind string for
        calls that terminate analysis at this site (None otherwise) and
        `targets` the candidate project-function keys. The default performs
        receiver resolution only; tools override to add leaf tables."""
        leaf = None
        targets = []
        if len(parts) > 1 and "::" not in parts[-1]:
            recv = self.resolve_chain(parts[:-1], func, cls)
            if recv is not None:
                targets = [f"{recv}::{method}"]
        elif "::" in expr:
            targets = [expr[2:] if expr.startswith("::") else expr]
        elif cls is not None:
            targets = [f"{cls}::{method}", method]
        else:
            targets = [method]
        return leaf, targets


class FileScanner:
    """Character-level scanner: scope stack + per-function lock tracking.

    Subclass hook methods (all default no-ops):
      on_function_begin(func)            -- after a definition opens
      on_function_end(func)              -- when its scope closes
      on_block_open(scope_idx, header)   -- block scope pushed inside a
                                            function; `header` is the
                                            if/for/while text (or "")
      on_scope_close(scope, idx)         -- any scope inside a function
                                            closed (before lock cleanup)
      on_statement(stmt, line)           -- every statement inside a
                                            function, after lock events and
                                            call extraction
    """

    LAMBDA_TAIL_RE = re.compile(
        r"\[[^\[\]]*\]\s*(\([^()]*\))?\s*(mutable\b\s*)?(noexcept\b\s*)?"
        r"(->\s*[\w:<>,&*\s]+)?$")
    BLOCK_HEAD_RE = re.compile(r"^\s*(if|for|while|switch|do|else|try|catch)\b")
    CLASS_RE = re.compile(
        r"\b(?:class|struct)\s+([A-Za-z_][\w:]*)\s*(?:final\s*)?(?::[^{]*)?$")
    NS_RE = re.compile(r"\bnamespace\s+([A-Za-z_]\w*)?\s*$")

    # Methods never treated as analyzable calls (lock/CV plumbing).
    SKIP_METHODS = ("Lock", "Unlock", "TryLock", "Wait", "TimedWait",
                    "MutexLock", "ScopedBlockingIoAllowed")

    def __init__(self, an, rel, code, annotated_lines, comment_only):
        self.an = an
        self.rel = rel
        self.code = code
        # {keyword: set(lines)}; primary = first configured annotation.
        self.annotated_lines = annotated_lines
        self.comment_only = comment_only
        self.scopes = [Scope("global")]
        self.ns = []              # inner namespaces beyond lsmlab
        self.func = None          # current Function (innermost)
        self.locks = []           # list of Lock, in acquisition order
        self.pending = ""
        self.pending_line = 1

    # -- subclass hooks ----------------------------------------------------
    def on_function_begin(self, func):
        pass

    def on_function_end(self, func):
        pass

    def on_block_open(self, scope_idx, header):
        pass

    def on_scope_close(self, scope, idx):
        pass

    def on_statement(self, stmt, line):
        pass

    # class key from current scope stack (inner namespaces + class names)
    def class_key(self):
        names = [s.name for s in self.scopes if s.kind == "class" and s.name]
        if not names:
            return None
        return "::".join(self.ns + names)

    def run(self):
        line = 1
        paren = 0
        i = 0
        code = self.code
        n = len(code)
        while i < n:
            c = code[i]
            if c == "\n":
                line += 1
                i += 1
                continue
            if self.scopes[-1].kind == "lambda":
                if c == "{":
                    self.scopes.append(Scope("lambda"))
                elif c == "}":
                    self.scopes.pop()
                i += 1
                continue
            if c == "(":
                paren += 1
            elif c == ")":
                paren = max(0, paren - 1)
            elif c == "{":
                self.open_brace(line, paren)
                i += 1
                continue
            elif c == "}":
                self.close_brace()
                i += 1
                continue
            elif c == ";" and paren == 0:
                self.statement(self.pending, self.pending_line)
                self.reset_pending(line)
                i += 1
                continue
            if not self.pending.strip():
                self.pending_line = line
            self.pending += c
            i += 1

    def reset_pending(self, line):
        self.pending = ""
        self.pending_line = line

    def strip_attrs(self, text):
        out = text
        for mac in ATTR_MACROS:
            out = re.sub(r"\b" + mac + r"\s*\([^()]*\)", " ", out)
        return out

    def open_brace(self, line, paren):
        pending = self.pending.strip()
        if self.LAMBDA_TAIL_RE.search(pending):
            self.scopes.append(Scope("lambda"))
            return
        if paren > 0:
            self.scopes.append(Scope("inline"))
            return
        m = self.NS_RE.search(pending)
        if m:
            name = m.group(1) or ""
            if name and name != "lsmlab":
                self.ns.append(name)
                self.scopes.append(Scope("namespace", name))
            else:
                self.scopes.append(Scope("namespace", ""))
            self.reset_pending(line)
            return
        m = self.CLASS_RE.search(pending)
        if m and "enum" not in pending:
            self.scopes.append(Scope("class", m.group(1)))
            self.reset_pending(line)
            return
        in_function = self.func is not None
        stripped = self.strip_attrs(pending).strip()
        if not in_function:
            # function definition?  needs '(' ... ')' tail (after attrs).
            if ("(" in stripped and
                    re.search(r"\)\s*(const\s*)?(noexcept\s*)?(override\s*)?"
                              r"(final\s*)?(:[^;{]*)?$", stripped) and
                    "enum" not in stripped and "=" not in
                    re.sub(r":[^;{]*$", "", stripped)):
                self.begin_function(pending, line)
                self.reset_pending(line)
                return
            self.scopes.append(Scope("inline"))
            return
        # Inside a function: block vs brace-init.
        if self.BLOCK_HEAD_RE.match(pending) or not pending:
            self.statement(self.pending, self.pending_line)  # block header
            self.scopes.append(Scope("block"))
            self.on_block_open(len(self.scopes) - 1, pending)
            self.reset_pending(line)
            return
        if stripped.endswith(")"):
            self.statement(self.pending, self.pending_line)
            self.scopes.append(Scope("block"))
            self.on_block_open(len(self.scopes) - 1, pending)
            self.reset_pending(line)
            return
        self.scopes.append(Scope("inline"))

    def begin_function(self, pending, line):
        head = re.sub(r":\s*[^;{]*$", "", pending) \
            if re.search(r"\)\s*:\s*\w", pending) else pending
        lp = head.find("(")
        name_m = SIG_NAME_RE.search(head[:lp]) if lp > 0 else None
        cls = self.class_key()
        if name_m is None:
            key = f"<anon@{self.rel}:{line}>"
            name = key
            returns = None
        else:
            name = name_m.group(1)
            returns = self.signature_return_type(head[:lp], name_m)
            if "::" in name and cls is None:
                # Out-of-class definition: Class::Method
                cls = "::".join((self.ns + name.split("::")[:-1]))
                key = "::".join(self.ns + name.split("::"))
                name = name.split("::")[-1]
            elif cls is not None:
                key = f"{cls}::{name}"
            else:
                key = "::".join(self.ns + [name])
        req_exprs = re.findall(r"\bREQUIRES\s*\(([^()]*)\)", pending)
        req_exprs = [e.strip() for grp in req_exprs for e in grp.split(",")]
        if not req_exprs and cls is not None:
            req_exprs = self.an.decl_requires.get((cls, name), [])
        f = Function(key, self.rel, line, cls, [], returns)
        # Parameters -> local types.
        if lp > 0:
            params = head[lp + 1:head.rfind(")")]
            for p in params.split(","):
                dm = match_decl(p.strip() + ";")
                if dm:
                    f.locals[dm.group(2)] = strip_type(dm.group(1))
        for e in req_exprs:
            q = self.an.qualify_lock(e, f, cls)
            if q is not None:
                f.requires.append(q)
        self.an.functions[key] = f
        self.func = f
        self.scopes.append(Scope("function", name))
        self.locks = [
            Lock(q, len(self.scopes) - 1) for q in f.requires]
        self.on_function_begin(f)

    def signature_return_type(self, before_name, name_m):
        """Raw return-type text preceding the function name in a signature
        head, or None (constructors/destructors, conversion operators)."""
        ret = self.strip_attrs(before_name[:name_m.start()])
        ret = re.sub(r"\b(public|protected|private)\s*:", " ", ret)
        ret = RET_QUAL_RE.sub(" ", ret)
        ret = RET_QUAL_RE.sub(" ", ret).strip()
        return " ".join(ret.split()) or None

    def close_brace(self):
        if len(self.scopes) <= 1:
            return
        scope = self.scopes.pop()
        idx = len(self.scopes)  # index the popped scope had
        if scope.kind in ("namespace",) and scope.name:
            if self.ns and self.ns[-1] == scope.name:
                self.ns.pop()
        if self.func is not None:
            self.on_scope_close(scope, idx)
            # Release MutexLocks acquired in this scope; restore suspended
            # manual locks whose deeper Unlock scope just closed (the unlock
            # sat on an early-exit path or was re-Locked before the close).
            self.locks = [lk for lk in self.locks
                          if not (lk.scope_idx == idx and lk.suspended is None
                                  and lk.name in scope.acquired)]
            for lk in self.locks:
                if lk.suspended is not None and lk.suspended >= idx:
                    lk.suspended = None
        if scope.kind == "function":
            self.on_function_end(self.func)
            self.func = None
            self.locks = []
        self.reset_pending(self.pending_line)

    # -- statement analysis ------------------------------------------------
    def held_locks(self):
        held = set()
        for lk in self.locks:
            if lk.suspended is not None:
                continue
            info = self.an.rank_names.get(lk.name)
            if info is not None and not info[1]:  # no-io only
                held.add(lk.name)
        return frozenset(held)

    def statement(self, stmt, line):
        if self.func is None:
            self.class_member_decl(stmt, line)
            return
        f = self.func
        cls = f.cls
        # Local declarations feed receiver-type resolution.
        dm = match_decl(stmt.strip())
        if dm and dm.group(1) not in ("return", "delete", "new"):
            f.locals.setdefault(dm.group(2), strip_type(dm.group(1)))
        # Lock events first: a MutexLock on this statement guards later text.
        ml = MUTEXLOCK_RE.search(stmt)
        if ml:
            q = self.an.qualify_lock(ml.group(1), f, cls)
            if q is not None:
                idx = len(self.scopes) - 1
                self.locks.append(Lock(q, idx))
                self.scopes[-1].acquired.append(q)
        for m in LOCK_CALL_RE.finditer(stmt):
            expr, op = m.group(1), m.group(2)
            q = self.an.qualify_lock(expr, f, cls)
            if q is None:
                continue
            if op == "Lock":
                existing = [lk for lk in self.locks if lk.name == q]
                resumed = False
                for lk in existing:
                    if lk.suspended is not None:
                        lk.suspended = None
                        resumed = True
                        break
                if not resumed:
                    self.locks.append(Lock(q, len(self.scopes) - 1))
            else:  # Unlock
                for lk in reversed(self.locks):
                    if lk.name == q and lk.suspended is None:
                        here = len(self.scopes) - 1
                        if here > lk.scope_idx:
                            lk.suspended = here  # maybe early-exit path
                        else:
                            self.locks.remove(lk)
                        break
        self.extract_calls(stmt, line)
        self.on_statement(stmt, line)

    def class_member_decl(self, stmt, line):
        cls = self.class_key()
        if cls is None:
            return
        s = stmt.strip()
        # Method declarations: REQUIRES entry locks and return types.
        if "(" in s:
            lp = s.find("(")
            nm = SIG_NAME_RE.search(s[:lp])
            if nm:
                mname = nm.group(1).split("::")[-1]
                reqs = re.findall(r"\bREQUIRES\s*\(([^()]*)\)", s)
                reqs = [e.strip() for grp in reqs for e in grp.split(",")]
                if reqs:
                    self.an.decl_requires[(cls, mname)] = reqs
                ret = self.signature_return_type(s[:lp], nm)
                if ret:
                    self.an.decl_returns.setdefault((cls, mname), ret)
        # Mutex members (ranked or not).
        mm = re.match(
            r"^(?:mutable\s+)?Mutex\s+(\w+)\s*"
            r"(?:ACQUIRED_AFTER\([^()]*\)\s*)?"
            r"(?:\{\s*LockRank::(\w+)\s*\})?$", self.strip_guarded(s))
        if mm:
            self.an.mutex_members.append(
                (cls, mm.group(1), mm.group(2), self.rel, line))
        # Plain member declarations feed the type maps.
        dm = match_decl(self.strip_attrs(s))
        if dm and "(" not in s.split(dm.group(2))[0]:
            self.an.class_members.setdefault(cls, {})[dm.group(2)] = \
                strip_type(dm.group(1))

    @staticmethod
    def strip_guarded(s):
        s = re.sub(r"\bGUARDED_BY\s*\([^()]*\)", " ", s)
        s = re.sub(r"=\s*[^;{]*$", "", s)
        return " ".join(s.split())

    def primary_lines(self):
        if not self.an.annotations:
            return set()
        return self.annotated_lines[self.an.annotations[0]]

    def is_annotated(self, line, lines=None):
        """True when `line` (or the run of comment-only lines immediately
        above it) carries the annotation; `lines` defaults to the primary
        keyword's line set."""
        if lines is None:
            lines = self.primary_lines()
        if line in lines:
            return True
        ln = line - 1
        while ln > 0 and ln in self.comment_only:
            if ln in lines:
                return True
            ln -= 1
        return False

    def annotation_notes(self, line):
        return frozenset(kw for kw in self.an.annotations
                         if self.is_annotated(line, self.annotated_lines[kw]))

    def extract_calls(self, stmt, line):
        f = self.func
        cls = f.cls
        stmt = re.sub(r"\.get\(\)\s*->", "->", stmt)
        stmt = re.sub(r"\.get\(\)\s*\.", ".", stmt)
        held = self.held_locks()
        annotated = self.is_annotated(line)
        notes = self.annotation_notes(line)
        for m in CALL_RE.finditer(stmt):
            expr = re.sub(r"\s+", "", m.group(1))
            parts = re.split(r"\.|->", expr)
            method = parts[-1].split("::")[-1]
            if method in KEYWORDS or method.startswith("~"):
                continue
            if method in self.SKIP_METHODS:
                continue
            leaf, targets = self.an.classify_call(self, f, cls, expr, parts,
                                                  method)
            site = Site(self.rel, line, f, expr, method, held, annotated,
                        leaf, targets, notes)
            if annotated:
                self.an.annotated_sites.append(site)
            if leaf is not None or targets:
                f.sites.append(site)
            elif held and self.an.verbose:
                self.an.unresolved.append((self.rel, line, expr))


Frontend.scanner_class = FileScanner


# ---------------------------------------------------------------- helpers --
def collect_files(root):
    """Every .h/.cc under src/ (union of compile_commands.json when present
    and a directory walk), headers first so declarations precede
    definitions."""
    files = set()
    cc = os.path.join(root, "build", "compile_commands.json")
    if os.path.exists(cc):
        try:
            with open(cc) as f:
                entries = json.load(f)
            for entry in entries:
                p = entry.get("file", "")
                if p.endswith((".cc", ".h")) and os.path.exists(p):
                    if os.path.realpath(p).startswith(
                            os.path.realpath(os.path.join(root, "src"))):
                        files.add(os.path.realpath(p))
        except (ValueError, OSError):
            pass
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for nm in names:
            if nm.endswith((".h", ".cc")):
                files.add(os.path.realpath(os.path.join(dirpath, nm)))
    # Headers first so declarations (REQUIRES, members) precede definitions.
    return sorted(files, key=lambda p: (not p.endswith(".h"), p))


def load_audit_list(path, errors):
    """Tab-separated audit rows: file, function, callee, reason. Returns
    [(line_no, file, function, callee, reason)]."""
    entries = []
    if not os.path.exists(path):
        errors.append(f"missing audit list: {path}")
        return entries
    with open(path) as f:
        for ln, raw in enumerate(f, 1):
            s = raw.rstrip("\n")
            if not s.strip() or s.lstrip().startswith("#"):
                continue
            parts = s.split("\t")
            if len(parts) != 4:
                errors.append(f"{path}:{ln}: expected 4 tab-separated "
                              f"fields (file, function, callee, reason)")
                continue
            entries.append((ln, parts[0], parts[1], parts[2], parts[3]))
    return entries
