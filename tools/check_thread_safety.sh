#!/usr/bin/env bash
# Verifies clang's thread-safety analysis over the lsmlab annotations.
#
# Two halves:
#   1. Positive: every translation unit in src/ passes
#      -Wthread-safety -Werror=thread-safety (syntax-only; no link, so no
#      gtest/benchmark needed).
#   2. Negative: a seeded violation — writing a GUARDED_BY member without
#      holding the mutex — must FAIL to compile. This proves the analysis
#      is actually firing, not silently disabled (e.g. by a broken macro
#      guard in thread_annotations.h).
#
# Requires clang++; skips (exit 0) with a notice when it is unavailable,
# since the annotations are no-ops under gcc and there is nothing to check.

set -u
cd "$(dirname "$0")/.."

CLANGXX="${CLANGXX:-clang++}"
if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  echo "check_thread_safety: SKIP ($CLANGXX not found; analysis is clang-only)"
  exit 0
fi

FLAGS=(-std=c++20 -Isrc -Wthread-safety -Werror=thread-safety -fsyntax-only)

echo "== positive: src/ must pass -Wthread-safety =="
fail=0
while IFS= read -r tu; do
  if ! "$CLANGXX" "${FLAGS[@]}" "$tu"; then
    echo "FAIL: $tu"
    fail=1
  fi
done < <(find src -name '*.cc' | sort)
if [ "$fail" -ne 0 ]; then
  echo "check_thread_safety: FAIL (thread-safety warnings in src/)"
  exit 1
fi
echo "OK"

echo "== negative: seeded unguarded access must be rejected =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/seeded_violation.cc" <<'EOF'
#include "util/mutex.h"

namespace lsmlab {

class Counter {
 public:
  // BUG (deliberate): touches value_ without taking mu_. The analysis must
  // reject this translation unit; if it compiles, the annotations are dead.
  void Increment() { value_++; }

 private:
  Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

void Use() { Counter().Increment(); }

}  // namespace lsmlab
EOF
if "$CLANGXX" "${FLAGS[@]}" "$tmp/seeded_violation.cc" 2> "$tmp/err.txt"; then
  echo "check_thread_safety: FAIL (seeded GUARDED_BY violation compiled" \
       "cleanly; the analysis is not firing)"
  exit 1
fi
if ! grep -q 'thread-safety' "$tmp/err.txt"; then
  echo "check_thread_safety: FAIL (seeded violation rejected, but not by" \
       "the thread-safety analysis:)"
  cat "$tmp/err.txt"
  exit 1
fi
echo "OK (rejected with: $(grep -m1 'thread-safety' "$tmp/err.txt" | head -c 120))"
echo "check_thread_safety: PASS"
