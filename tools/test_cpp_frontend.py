#!/usr/bin/env python3
"""Unit tests for tools/cpp_frontend.py (pure stdlib, python3 -m unittest).

Covers the scanner/call-graph corner cases the analyzers rely on:
preprocessing (comments, strings, preprocessor lines, annotation lines),
scope tracking (namespaces, in-class and out-of-class definitions, nested
blocks, lambdas), lock spans (MutexLock scopes, early-exit Unlock
suspend/restore), receiver-chain resolution, declared-return-type capture,
and the unique-suffix function lookup.

Run: python3 tools/test_cpp_frontend.py
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import cpp_frontend  # noqa: E402
from cpp_frontend import Frontend, preprocess, strip_type  # noqa: E402


def build(files, annotations=(), rank_names=None):
    """Write `files` ({relpath: text}) to a temp tree, scan them with a
    fresh Frontend (headers first, two phases), return the frontend."""
    with tempfile.TemporaryDirectory(prefix="cpp_frontend_test_") as tmp:
        paths = []
        for rel, text in files.items():
            p = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(p), exist_ok=True)
            with open(p, "w") as f:
                f.write(text)
            paths.append(p)
        paths.sort(key=lambda p: (not p.endswith(".h"), p))
        fe = Frontend(tmp, annotations=annotations)
        if rank_names:
            fe.rank_names = dict(rank_names)
        fe.run(paths)
        return fe


class PreprocessTest(unittest.TestCase):
    def test_blanks_comments_strings_and_pp_lines(self):
        text = ('#include "x.h"\n'
                'int a = 1; // trailing note\n'
                '/* block\n spans */ int b = 2;\n'
                'const char* s = "quoted // not a comment";\n')
        code, annotated, comment_only = preprocess(text)
        self.assertEqual(len(code), len(text))
        self.assertNotIn("include", code)
        self.assertNotIn("trailing", code)
        self.assertNotIn("spans", code)
        self.assertNotIn("quoted", code)
        self.assertIn("int a = 1;", code)
        self.assertIn("int b = 2;", code)

    def test_annotation_lines_and_comment_only_runs(self):
        text = ("int f() {\n"
                "  // first-kw: reason spans\n"
                "  // a second comment-only line\n"
                "  g();\n"
                "  h();  // second-kw: inline\n"
                "}\n")
        _, annotated, comment_only = preprocess(
            text, annotations=("first-kw", "second-kw"))
        self.assertEqual(annotated["first-kw"], {2})
        self.assertEqual(annotated["second-kw"], {5})
        self.assertEqual(comment_only, {2, 3})

    def test_backslash_continued_pp_line(self):
        text = ("#define M(x) \\\n  call(x)\n"
                "int real() { return 0; }\n")
        code, _, _ = preprocess(text)
        self.assertNotIn("call(x)", code)
        self.assertIn("int real()", code)


class StripTypeTest(unittest.TestCase):
    def test_wrappers_and_qualifiers(self):
        self.assertEqual(strip_type("const std::unique_ptr<Env>&"), "Env")
        self.assertEqual(strip_type("std::shared_ptr<SSTable>"), "SSTable")
        self.assertEqual(strip_type("lsmlab::Iterator*"), "Iterator")
        self.assertEqual(strip_type("WritableFile *"), "WritableFile")


HEADER = """\
#pragma once
namespace lsmlab {
class Env {
 public:
  Status RemoveFile(const std::string& f);
};
class Table {
 public:
  Iterator* NewIterator() const;
  Status Sync() REQUIRES(mu_);
 private:
  Mutex mu_{LockRank::kTableMu};
  Env* env_;
};
}  // namespace lsmlab
"""


class ScannerTest(unittest.TestCase):
    def test_in_class_and_out_of_class_definitions(self):
        fe = build({
            "t.h": HEADER,
            "t.cc": ("#include \"t.h\"\n"
                     "namespace lsmlab {\n"
                     "Iterator* Table::NewIterator() const {\n"
                     "  return nullptr;\n"
                     "}\n"
                     "Status Table::Sync() { return Status::OK(); }\n"
                     "}\n"),
        })
        self.assertIn("Table::NewIterator", fe.functions)
        self.assertIn("Table::Sync", fe.functions)
        self.assertEqual(fe.functions["Table::NewIterator"].cls, "Table")

    def test_return_type_from_definition_and_declaration(self):
        fe = build({"t.h": HEADER})
        # In-class declaration only: return_type_of falls back to decl map.
        self.assertEqual(fe.return_type_of("Table::NewIterator"),
                         "Iterator*")
        self.assertEqual(fe.return_type_of("Env::RemoveFile"), "Status")
        self.assertIsNone(fe.return_type_of("Table::NoSuchMethod"))

    def test_requires_from_declaration_applies_to_definition(self):
        fe = build({
            "t.h": HEADER,
            "t.cc": ("namespace lsmlab {\n"
                     "Status Table::Sync() { return Status::OK(); }\n"
                     "}\n"),
        }, rank_names={"Table::mu_": (10, False)})
        self.assertEqual(fe.functions["Table::Sync"].requires, ["Table::mu_"])

    def test_lambda_bodies_are_skipped(self):
        fe = build({
            "t.cc": ("namespace lsmlab {\n"
                     "void Run() {\n"
                     "  auto fn = [&](int x) {\n"
                     "    Helper();\n"
                     "    if (x) { Inner(); }\n"
                     "  };\n"
                     "  Outer();\n"
                     "}\n"
                     "}\n"),
        })
        f = fe.functions["Run"]
        callees = {s.method for s in f.sites}
        self.assertIn("Outer", callees)
        self.assertNotIn("Helper", callees)
        self.assertNotIn("Inner", callees)

    def test_nested_scopes_and_member_receiver_resolution(self):
        fe = build({
            "t.h": HEADER,
            "t.cc": ("namespace lsmlab {\n"
                     "void Table::Go(Env* e) {\n"
                     "  if (true) {\n"
                     "    for (int i = 0; i < 2; i++) {\n"
                     "      env_->RemoveFile(\"a\");\n"
                     "      e->RemoveFile(\"b\");\n"
                     "    }\n"
                     "  }\n"
                     "}\n"
                     "}\n"),
        })
        f = fe.functions["Table::Go"]
        targets = [t for s in f.sites for t in s.targets]
        # Both the member (env_) and the parameter (e) resolve to Env.
        self.assertEqual(targets.count("Env::RemoveFile"), 2)

    def test_unique_suffix_lookup(self):
        fe = build({
            "t.cc": ("namespace lsmlab {\n"
                     "void LruCache::Shard::Unref() {}\n"
                     "}\n"),
        })
        self.assertIsNotNone(fe.lookup("Shard::Unref"))
        self.assertIsNotNone(fe.lookup("LruCache::Shard::Unref"))
        self.assertIsNone(fe.lookup("NoSuch::Unref"))


LOCK_HDR = """\
#pragma once
namespace lsmlab {
class W {
 public:
  void Scoped();
  void Early(bool fail);
  void Resume();
 private:
  Mutex mu_{LockRank::kWMu};
};
}
"""
RANKS = {"W::mu_": (10, False)}


def held_at(fe, key, method):
    f = fe.functions[key]
    for s in f.sites:
        if s.method == method:
            return s.locks
    raise AssertionError(f"no call to {method} in {key}")


class LockSpanTest(unittest.TestCase):
    def test_mutexlock_scope_release(self):
        fe = build({
            "w.h": LOCK_HDR,
            "w.cc": ("namespace lsmlab {\n"
                     "void W::Scoped() {\n"
                     "  {\n"
                     "    MutexLock l(&mu_);\n"
                     "    Inside();\n"
                     "  }\n"
                     "  Outside();\n"
                     "}\n"
                     "}\n"),
        }, rank_names=RANKS)
        self.assertEqual(held_at(fe, "W::Scoped", "Inside"), {"W::mu_"})
        self.assertEqual(held_at(fe, "W::Scoped", "Outside"), frozenset())

    def test_early_exit_unlock_span_restored(self):
        # Unlock inside an early-return branch must not clear the lock for
        # the code after the branch (the span is suspended, then restored
        # when the branch scope closes).
        fe = build({
            "w.h": LOCK_HDR,
            "w.cc": ("namespace lsmlab {\n"
                     "void W::Early(bool fail) {\n"
                     "  mu_.Lock();\n"
                     "  if (fail) {\n"
                     "    mu_.Unlock();\n"
                     "    Bail();\n"
                     "    return;\n"
                     "  }\n"
                     "  StillHeld();\n"
                     "  mu_.Unlock();\n"
                     "  After();\n"
                     "}\n"
                     "}\n"),
        }, rank_names=RANKS)
        self.assertEqual(held_at(fe, "W::Early", "Bail"), frozenset())
        self.assertEqual(held_at(fe, "W::Early", "StillHeld"), {"W::mu_"})
        self.assertEqual(held_at(fe, "W::Early", "After"), frozenset())

    def test_same_scope_unlock_then_relock(self):
        fe = build({
            "w.h": LOCK_HDR,
            "w.cc": ("namespace lsmlab {\n"
                     "void W::Resume() {\n"
                     "  mu_.Lock();\n"
                     "  A();\n"
                     "  mu_.Unlock();\n"
                     "  B();\n"
                     "  mu_.Lock();\n"
                     "  C();\n"
                     "  mu_.Unlock();\n"
                     "}\n"
                     "}\n"),
        }, rank_names=RANKS)
        self.assertEqual(held_at(fe, "W::Resume", "A"), {"W::mu_"})
        self.assertEqual(held_at(fe, "W::Resume", "B"), frozenset())
        self.assertEqual(held_at(fe, "W::Resume", "C"), {"W::mu_"})


class AnnotationTest(unittest.TestCase):
    def test_annotation_applies_to_line_and_run_above(self):
        fe = build({
            "a.cc": ("namespace lsmlab {\n"
                     "void F() {\n"
                     "  // my-kw: reason on the run above\n"
                     "  Above();\n"
                     "  Inline();  // my-kw: same line\n"
                     "  Bare();\n"
                     "}\n"
                     "}\n"),
        }, annotations=("my-kw",))
        f = fe.functions["F"]
        by_name = {s.method: s for s in f.sites}
        self.assertTrue(by_name["Above"].annotated)
        self.assertTrue(by_name["Inline"].annotated)
        self.assertFalse(by_name["Bare"].annotated)

    def test_multi_keyword_notes(self):
        fe = build({
            "a.cc": ("namespace lsmlab {\n"
                     "void F() {\n"
                     "  X();  // kw-one: p  kw-two: q\n"
                     "  Y();  // kw-two: only\n"
                     "}\n"
                     "}\n"),
        }, annotations=("kw-one", "kw-two"))
        f = fe.functions["F"]
        by_name = {s.method: s for s in f.sites}
        self.assertEqual(by_name["X"].notes, {"kw-one", "kw-two"})
        self.assertEqual(by_name["Y"].notes, {"kw-two"})
        self.assertFalse(by_name["Y"].annotated)  # primary is kw-one


if __name__ == "__main__":
    unittest.main()
